// Package policy defines the adaptation policies behind shard.Map's
// control plane, mirroring the lock and backend registries' design: each
// policy self-registers from its own file's init, and consumers select
// one with a spec string resolved by New — so the *adaptation* policy of
// a sharded service is runtime configuration, exactly like the admission
// and storage policies it adapts:
//
//	p, err := policy.New("static")
//	p, err := policy.New("malthusian?lwss=6&parks=64&hold=2")
//	p := policy.MustNew("scanaware?scanfrac=0.3&to=skiplist")
//
// A policy implements shard.Policy: a Decide function the controller
// (shard.StartController) calls once per stripe per interval with the
// stripe's previous and current snapshots. Policies may be stateful —
// Decide runs on a single goroutine, so hysteresis counters and
// remembered original specs need no synchronization — and they fail
// safe: a target spec the map rejects leaves the stripe untouched
// (Map.Reconfigure validates before quiescing).
//
// This registry is the third consumer of the internal/spec machinery,
// after locks and backends: same grammar, same error contract, same
// self-registration rule. Target-spec parameters whose values themselves
// contain spec syntax ("hot=mcscr-stp?fairness=500") must be URL-escaped
// ("hot=mcscr-stp%3Ffairness%3D500"), since the policy spec is itself a
// URL query.
package policy

import (
	"fmt"

	"repro/internal/spec"
	"repro/lock"
	"repro/shard"
	"repro/store"
)

// Policy is the decision contract a controller drives; it is exactly
// shard.Policy (aliased so this package's registry speaks the interface
// the shard controller consumes without an import cycle).
type Policy = shard.Policy

// Defaults for the built-in policies' parameters.
const (
	// DefaultLWSS is the recent working-set size at or above which
	// "malthusian" considers a stripe collapsing.
	DefaultLWSS = 8.0
	// DefaultParks is the per-interval park count at or above which
	// "malthusian" considers a stripe collapsing.
	DefaultParks = 64
	// DefaultHold is how many consecutive intervals a signal must
	// persist before a policy acts on it — the hysteresis that keeps a
	// borderline stripe from flapping between specs.
	DefaultHold = 2
	// DefaultScanFrac is the scan share of traffic at or above which
	// "scanaware" flips a stripe to an ordered backend.
	DefaultScanFrac = 0.5
	// DefaultHotLockSpec is the culling/passivating lock spec
	// "malthusian" demotes a collapsing stripe to.
	DefaultHotLockSpec = "mcscr-stp"
	// DefaultOrderedSpec is the ordered backend spec "scanaware" flips a
	// scan-dominated stripe to.
	DefaultOrderedSpec = "skiplist"
	// DefaultSLOTarget is the deadline-miss rate budget "slo" defends: the
	// fraction of deadline-bounded operations allowed to expire.
	DefaultSLOTarget = 0.05
	// DefaultSLOFast and DefaultSLOSlow are the "slo" policy's burn-rate
	// window lengths, in non-idle controller intervals. The fast window
	// bounds reaction time; the slow window vetoes transient spikes and,
	// after a demotion, holds the evidence that forces sustained calm
	// before a restore.
	DefaultSLOFast = 3
	DefaultSLOSlow = 12
	// DefaultSLOMinAttempts is the deadline-bounded traffic the "slo"
	// fast window must contain before the policy acts either way — a
	// near-idle stripe's one missed op is not a 100% burn rate.
	DefaultSLOMinAttempts = 8
)

// config carries the construction parameters the built-in policies
// understand. A policy reads what applies to it and ignores the rest —
// the same contract the lock and backend options follow.
type config struct {
	lwss     float64
	parks    uint64
	hold     int
	scanFrac float64
	hotLock  string
	ordered  string

	sloTarget float64
	sloFast   int
	sloSlow   int
	sloMin    uint64
}

// Option configures policy construction.
type Option func(*config)

// WithLWSS sets the recent-LWSS collapse threshold ("malthusian"). 0
// disables the LWSS trigger.
func WithLWSS(n float64) Option {
	return func(c *config) { c.lwss = n }
}

// WithParks sets the per-interval parks collapse threshold
// ("malthusian"). 0 disables the parks trigger.
func WithParks(n uint64) Option {
	return func(c *config) { c.parks = n }
}

// WithHold sets how many consecutive intervals a signal must persist
// before the policy swaps (hysteresis depth, both directions). Values
// below 1 are raised to 1.
func WithHold(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.hold = n
	}
}

// WithScanFrac sets the scan share of traffic at or above which
// "scanaware" flips to an ordered backend. The value is clamped to
// [0, 1]; 0 disables the policy (a zero threshold would otherwise make
// every interval read as both hot and calm).
func WithScanFrac(f float64) Option {
	return func(c *config) {
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		c.scanFrac = f
	}
}

// WithHotLockSpec sets the lock spec "malthusian" demotes a collapsing
// stripe to. The spec is validated when the swap is applied
// (Map.Reconfigure), not here.
func WithHotLockSpec(s string) Option {
	return func(c *config) {
		if s != "" {
			c.hotLock = s
		}
	}
}

// WithOrderedSpec sets the backend spec "scanaware" flips a
// scan-dominated stripe to; it should name a store.Ordered backend.
func WithOrderedSpec(s string) Option {
	return func(c *config) {
		if s != "" {
			c.ordered = s
		}
	}
}

// WithSLOTarget sets the deadline-miss rate budget "slo" defends,
// clamped to [0, 1]. 0 disables the policy (no budget, nothing to burn).
func WithSLOTarget(f float64) Option {
	return func(c *config) {
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		c.sloTarget = f
	}
}

// WithSLOWindows sets the "slo" policy's burn-rate windows in non-idle
// controller intervals: fast bounds reaction time, slow vetoes transient
// spikes. Values below 1 are raised to 1; a slow window shorter than the
// fast is raised to it.
func WithSLOWindows(fast, slow int) Option {
	return func(c *config) {
		if fast < 1 {
			fast = 1
		}
		if slow < fast {
			slow = fast
		}
		c.sloFast, c.sloSlow = fast, slow
	}
}

// WithSLOMinAttempts sets the deadline-bounded traffic the "slo" fast
// window must contain before the policy acts either way.
func WithSLOMinAttempts(n uint64) Option {
	return func(c *config) { c.sloMin = n }
}

func resolve(opts []Option) config {
	cfg := config{
		lwss:      DefaultLWSS,
		parks:     DefaultParks,
		hold:      DefaultHold,
		scanFrac:  DefaultScanFrac,
		hotLock:   DefaultHotLockSpec,
		ordered:   DefaultOrderedSpec,
		sloTarget: DefaultSLOTarget,
		sloFast:   DefaultSLOFast,
		sloSlow:   DefaultSLOSlow,
		sloMin:    DefaultSLOMinAttempts,
	}
	for _, o := range opts {
		o(&cfg)
	}
	// The slow window bounds the fast one whatever order the options (or
	// spec parameters, applied last) arrived in.
	if cfg.sloSlow < cfg.sloFast {
		cfg.sloSlow = cfg.sloFast
	}
	return cfg
}

// Builder constructs a policy from construction options.
type Builder func(opts ...Option) Policy

// Registration describes one policy implementation to the registry; the
// machinery is the same generic internal/spec registry the lock and
// backend families use.
type Registration = spec.Registration[Builder]

var registry = spec.NewRegistry[Builder]("policy", "policy")

// Register adds a policy implementation to the registry. It panics on an
// empty name, a nil builder, or a name/alias collision — registration is
// an init-time act and a collision is a programming error.
func Register(r Registration) {
	if r.Name == "" || r.Build == nil {
		panic("policy: Register with empty name or nil builder")
	}
	registry.Register(r)
}

// Names returns the sorted canonical names of every registered policy.
func Names() []string { return registry.Names() }

// Lookup resolves a name or alias to its Registration.
func Lookup(name string) (Registration, bool) { return registry.Lookup(name) }

// New builds a policy from a spec string: a registered name, optionally
// followed by URL-style parameters:
//
//	"static"
//	"malthusian?lwss=6&parks=64&hold=2"
//	"scanaware?scanfrac=0.3&to=rbtree"
//
// Parameters (each maps onto the corresponding Option):
//
//	lwss=N        recent-LWSS collapse threshold (0 disables)   WithLWSS
//	parks=N       per-interval parks threshold (0 disables)     WithParks
//	hold=N        hysteresis depth in intervals                 WithHold
//	scanfrac=F    scan-share flip threshold, 0..1 (0 disables)  WithScanFrac
//	hot=SPEC      demotion lock spec (URL-escaped)              WithHotLockSpec
//	to=SPEC       ordered backend spec (URL-escaped)            WithOrderedSpec
//	target=F      deadline-miss budget, 0..1 (0 disables)       WithSLOTarget
//	fast=N        fast burn window, non-idle intervals          WithSLOWindows
//	slow=N        slow burn window (raised to fast if shorter)  WithSLOWindows
//	min=N         fast-window attempts floor before acting      WithSLOMinAttempts
//
// hot= and to= are validated against their registries at parse time, so
// a typo fails here rather than silently never swapping. Spec parameters
// are applied after opts, so the spec overrides programmatic defaults.
// Malformed specs — unknown name, unknown or duplicated parameter, bad
// value — return a descriptive error and a nil Policy.
func New(spec string, opts ...Option) (Policy, error) {
	reg, query, err := registry.Resolve(spec)
	if err != nil {
		return nil, err
	}
	specOpts, err := grammar.Parse(spec, query)
	if err != nil {
		return nil, err
	}
	if len(specOpts) > 0 {
		opts = append(append([]Option(nil), opts...), specOpts...)
	}
	return reg.Build(opts...), nil
}

// MustNew is New for tests, examples, and initialization paths where a
// malformed spec is a programming error; it panics instead of returning
// one.
func MustNew(spec string, opts ...Option) Policy {
	p, err := New(spec, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

var grammar = spec.NewGrammar[Option]("policy", map[string]spec.ParamFunc[Option]{
	"lwss": func(v string) (Option, error) {
		n, err := spec.Uint(v)
		if err != nil {
			return nil, err
		}
		return WithLWSS(float64(n)), nil
	},
	"parks": func(v string) (Option, error) {
		n, err := spec.Uint(v)
		if err != nil {
			return nil, err
		}
		return WithParks(n), nil
	},
	"hold": func(v string) (Option, error) {
		n, err := spec.PosInt(v)
		if err != nil {
			return nil, err
		}
		return WithHold(n), nil
	},
	"scanfrac": func(v string) (Option, error) {
		f, err := spec.Frac(v)
		if err != nil {
			return nil, err
		}
		return WithScanFrac(f), nil
	},
	"hot": func(v string) (Option, error) {
		// Build (and discard) a lock to validate the target spec now;
		// registry locks are cheap to construct. The ContextMutex
		// assertion mirrors shard.Map's own buildLock requirement, so a
		// custom-registered plain lock fails here instead of silently
		// never swapping at Reconfigure time.
		mtx, err := lock.New(v)
		if err != nil {
			return nil, err
		}
		if _, ok := mtx.(lock.ContextMutex); !ok {
			return nil, fmt.Errorf("lock spec %q builds a %T, which is not a lock.ContextMutex (required for shard stripes)", v, mtx)
		}
		return WithHotLockSpec(v), nil
	},
	"to": func(v string) (Option, error) {
		b, err := store.New(v)
		if err != nil {
			return nil, err
		}
		if _, ok := b.(store.Ordered); !ok {
			return nil, fmt.Errorf("backend spec %q is not ordered (scans need store.Ordered)", v)
		}
		return WithOrderedSpec(v), nil
	},
	"target": func(v string) (Option, error) {
		f, err := spec.Frac(v)
		if err != nil {
			return nil, err
		}
		return WithSLOTarget(f), nil
	},
	"fast": func(v string) (Option, error) {
		n, err := spec.PosInt(v)
		if err != nil {
			return nil, err
		}
		// Sets only the fast window; resolve re-clamps slow >= fast after
		// all options land, so fast=/slow= compose in either order.
		return func(c *config) { c.sloFast = n }, nil
	},
	"slow": func(v string) (Option, error) {
		n, err := spec.PosInt(v)
		if err != nil {
			return nil, err
		}
		return func(c *config) { c.sloSlow = n }, nil
	},
	"min": func(v string) (Option, error) {
		n, err := spec.Uint(v)
		if err != nil {
			return nil, err
		}
		return WithSLOMinAttempts(n), nil
	},
})
