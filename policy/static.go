package policy

import "repro/shard"

func init() {
	Register(Registration{
		Name:    "static",
		Aliases: []string{"none", "noop"},
		Summary: "never reconfigures; the baseline every adaptive policy is measured against",
		Build:   func(opts ...Option) Policy { return staticPolicy{} },
	})
}

// staticPolicy is the do-nothing policy: whatever specs the map was
// built with stay. It exists so an adaptive run and a frozen run differ
// by exactly one flag — the controller machinery (snapshot cadence,
// Decide calls) is priced identically in both.
type staticPolicy struct{}

func (staticPolicy) Decide(prev, cur shard.StripeSnapshot) (lockSpec, backendSpec string, swap bool) {
	return "", "", false
}
