package policy

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/fault"
	"repro/shard"
)

// TestChaosStallStormDemoteRecover is the scripted end-to-end chaos
// scenario: a critical-section stall storm is injected on a hot stripe
// and the slo policy must ride it out —
//
//	inject → demote (while the fault is still active) → deadline-miss
//	rate back under target → fault lifted → original spec restored →
//	no further swaps.
//
// The traffic mix is what makes the recovery physically possible, and it
// is the paper's own scenario: a crowd of *patient* closed-loop
// hammerers (plain ops, no deadlines — they can afford to wait) plus a
// paced trickle of deadline-bounded probes (the SLO traffic). Under the
// FIFO mcs-stp lock the stall convoys: a probe queues behind every
// hammerer, each holding the stalled critical section, and its wait is
// roughly hammerers × hold — far past its deadline, so the budget burns.
// Culling (mcscr-stp) passivates the patient crowd instead: the active
// set collapses to a couple of threads, a freshly arrived probe is
// granted after one or two holds, and the deadline is met *while the
// stall is still being injected*. Demoting the lock fixes the SLO
// without fixing the fault — which is exactly the claim of "Malthusian
// Locks", measured at the objective.
func TestChaosStallStormDemoteRecover(t *testing.T) {
	// The margins are two-sided: the storm must overrun the probe SLO
	// with room to spare (hammerers × hold = 20ms ≫ 12ms), while the
	// SLO must stay meetable through ordinary scheduler noise on a
	// loaded test machine (a fault-free critical section is sub-µs, so
	// only starvation of the probe goroutine itself burns the budget —
	// 12ms absorbs what 8ms did not when the whole suite runs in
	// parallel).
	const (
		hammerers = 10
		hold      = 2 * time.Millisecond
		probeSLO  = 12 * time.Millisecond
		probeGap  = 2 * time.Millisecond
		interval  = 20 * time.Millisecond
		target    = 0.25
	)
	m := shard.MustNew(shard.Config{Stripes: 2, LockSpec: "mcs-stp"})
	hotKey := uint64(1)
	idx := m.StripeFor(hotKey)

	set := fault.MustNew(fmt.Sprintf("stall?p=1&hold=%s&stripe=%d", hold, idx))
	m.SetInjector(set)

	// slow=30 keeps storm evidence in the slow window for ~600ms after
	// the demotion: long enough that the policy cannot restore while the
	// fault is still armed (the mid-fault SLO recovery would otherwise
	// read as calm), short enough that the post-fault restore below
	// completes promptly.
	pol := MustNew(fmt.Sprintf("slo?target=%v&fast=3&slow=30&min=4&hot=mcscr-stp", target))
	ctl := shard.StartController(context.Background(), m, pol, interval)
	defer ctl.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < hammerers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Put(hotKey, 1) // patient: no deadline, happy to wait out the stall
			}
		}()
	}
	var probeAttempts, probeMisses atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(probeGap)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			ctx, cancel := context.WithTimeout(context.Background(), probeSLO)
			_, _, err := m.GetContext(ctx, hotKey)
			cancel()
			probeAttempts.Add(1)
			if err != nil {
				probeMisses.Add(1)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	lockSpecOf := func(i int) string {
		t.Helper()
		ls, _ := m.StripeSpecs(i)
		return ls
	}
	// missRate samples the probes' own deadline-miss rate over one
	// observation window. It deliberately reads the probe goroutine's
	// counters, not a map snapshot: a snapshot acquires the stormed
	// stripe's lock, and on a culling lock a monitor is exactly the kind
	// of patient arrival that gets passivated — the measurement would
	// stall behind the very convoy it is measuring. The probes' counters
	// are also the honest signal: the SLO is what callers observe.
	missRate := func(window time.Duration) float64 {
		a0, m0 := probeAttempts.Load(), probeMisses.Load()
		time.Sleep(window)
		dA := probeAttempts.Load() - a0
		dM := probeMisses.Load() - m0
		if dA == 0 {
			return 0
		}
		return float64(dM) / float64(dA)
	}

	// Phase 1 — healthy baseline: no fault, no swaps.
	time.Sleep(6 * interval)
	if got := ctl.Swaps(); got != 0 {
		t.Fatalf("swapped %d times on a healthy map", got)
	}

	// Phase 2 — inject. The storm must demote the stripe to the culling
	// lock while the fault is still active.
	set.Arm()
	waitFor("slo to demote the stormed stripe", func() bool {
		return lockSpecOf(idx) == "mcscr-stp"
	})
	if !set.Active() {
		t.Fatal("fault no longer active at demotion — the storm script is wrong")
	}
	if got := ctl.Swaps(); got != 1 {
		t.Fatalf("Swaps = %d at demotion, want 1", got)
	}

	// Phase 3 — SLO recovery under active fault: with the patient crowd
	// passivated, probe misses must fall back under target even though
	// every critical section on the stripe still stalls.
	waitFor("post-demotion miss rate below target", func() bool {
		return missRate(5*interval) < target
	})
	if st := set.Stats(); st.Stalls == 0 {
		t.Fatalf("no stalls recorded while recovering: %+v", st)
	}

	// Phase 4 — lift the fault; sustained calm must restore the original
	// FIFO spec, exactly once.
	set.Disarm()
	waitFor("slo to restore the original spec", func() bool {
		return lockSpecOf(idx) == "mcs-stp"
	})
	if got := ctl.Swaps(); got != 2 {
		t.Fatalf("Swaps = %d after restore, want 2 (demote + restore)", got)
	}

	// Phase 5 — zero flapping: a healthy map after recovery stays put.
	time.Sleep(10 * interval)
	if got := ctl.Swaps(); got != 2 {
		t.Fatalf("Swaps grew to %d after recovery — flapping", got)
	}
	if got := lockSpecOf(idx); got != "mcs-stp" {
		t.Fatalf("stripe %d spec %q after recovery", idx, got)
	}
	if got := lockSpecOf(1 - idx); got != "mcs-stp" {
		t.Fatalf("untargeted stripe %d was swapped (%q)", 1-idx, got)
	}
	if got := ctl.Rejected(); got != 0 {
		t.Fatalf("controller rejected %d swaps", got)
	}
}
