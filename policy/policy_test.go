package policy

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/lock"
	"repro/metrics"
	"repro/shard"
)

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"malthusian", "scanaware", "static"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v, missing %q", names, want)
		}
	}
	if _, ok := Lookup("noop"); !ok {
		t.Fatal("alias noop did not resolve")
	}
	for _, spec := range []string{"static", "malthusian?lwss=6&parks=32&hold=3", "scanaware?scanfrac=0.25&to=rbtree", "malthusian?hot=lifocr"} {
		if _, err := New(spec); err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
	}
	for _, bad := range []struct{ spec, frag string }{
		{"no-such-policy", "unknown policy"},
		{"static?bogus=1", "unknown parameter"},
		{"malthusian?hold=0", "bad value"},
		{"malthusian?lwss=x", "bad value"},
		{"scanaware?scanfrac=1.5", "bad value"},
		{"scanaware?scanfrac=0.5&scanfrac=0.6", "given 2 times"},
		{"malthusian?hot=no-such-lock", "bad value"},
		{"scanaware?to=no-such-backend", "bad value"},
		{"scanaware?to=hashmap", "not ordered"},
	} {
		_, err := New(bad.spec)
		if err == nil {
			t.Fatalf("New(%q) accepted", bad.spec)
		}
		if !strings.Contains(err.Error(), bad.frag) {
			t.Fatalf("New(%q) error %q missing %q", bad.spec, err, bad.frag)
		}
	}
}

// plainMutex satisfies lock.Mutex but not lock.ContextMutex: the class
// of custom registration shard stripes cannot use.
type plainMutex struct{ mu sync.Mutex }

func (p *plainMutex) Lock()         { p.mu.Lock() }
func (p *plainMutex) Unlock()       { p.mu.Unlock() }
func (p *plainMutex) TryLock() bool { return p.mu.TryLock() }

// registerPlainOnce guards the test-only registration: `go test -count=2`
// reruns tests in one process, and re-registering a name panics.
var registerPlainOnce sync.Once

func TestHotSpecRequiresContextMutex(t *testing.T) {
	registerPlainOnce.Do(func() {
		lock.Register(lock.Registration{
			Name:    "plain-test-lock",
			Summary: "test-only: a Mutex without LockContext",
			Build:   func(opts ...lock.Option) lock.Mutex { return &plainMutex{} },
		})
	})
	// The parse-time contract: a hot= target the shard layer would
	// reject must fail at policy.New, not silently never swap.
	_, err := New("malthusian?hot=plain-test-lock")
	if err == nil || !strings.Contains(err.Error(), "ContextMutex") {
		t.Fatalf("New accepted a non-ContextMutex hot target: %v", err)
	}
}

func TestStatic(t *testing.T) {
	p := MustNew("static")
	hot := shard.StripeSnapshot{Index: 0, LockSpec: "tas", Lock: core.Snapshot{Parks: 1 << 20}}
	for i := 0; i < 10; i++ {
		if _, _, swap := p.Decide(shard.StripeSnapshot{}, hot); swap {
			t.Fatal("static swapped")
		}
	}
}

// snap builds a scripted stripe snapshot: cumulative parks/acquires and a
// recent working set, the signals the built-in policies read.
func snap(idx int, lockSpec, backendSpec string, parks, acquires, scans uint64, recentLWSS float64) shard.StripeSnapshot {
	return shard.StripeSnapshot{
		Index:       idx,
		LockSpec:    lockSpec,
		BackendSpec: backendSpec,
		Ordered:     backendSpec != "hashmap",
		Scans:       scans,
		Lock:        core.Snapshot{Parks: parks, Acquires: acquires},
		Fairness:    metrics.Summary{RecentLWSS: recentLWSS},
	}
}

func TestMalthusianDemotesAndRestores(t *testing.T) {
	p := MustNew("malthusian?parks=100&lwss=8&hold=2")
	prev := snap(3, "mcs-stp", "hashmap", 0, 0, 0, 2)

	// Interval 1: park storm begins. hold=2, so no swap yet.
	cur := snap(3, "mcs-stp", "hashmap", 150, 1000, 0, 2)
	if _, _, swap := p.Decide(prev, cur); swap {
		t.Fatal("demoted after one hot interval (hold=2)")
	}
	// Interval 2: storm persists — demote to the hot spec, lock only.
	prev, cur = cur, snap(3, "mcs-stp", "hashmap", 300, 2000, 0, 2)
	ls, bs, swap := p.Decide(prev, cur)
	if !swap || ls != DefaultHotLockSpec || bs != "" {
		t.Fatalf("Decide = %q, %q, %v want %q, \"\", true", ls, bs, swap, DefaultHotLockSpec)
	}

	// Demoted. Calm intervals must persist hold times before restore.
	prev, cur = cur, snap(3, "mcscr-stp", "hashmap", 310, 2500, 0, 2) // 10 parks < 50
	if _, _, swap := p.Decide(prev, cur); swap {
		t.Fatal("restored after one calm interval")
	}
	prev, cur = cur, snap(3, "mcscr-stp", "hashmap", 320, 3000, 0, 2)
	ls, bs, swap = p.Decide(prev, cur)
	if !swap || ls != "mcs-stp" || bs != "" {
		t.Fatalf("restore Decide = %q, %q, %v want original mcs-stp", ls, bs, swap)
	}
}

func TestMalthusianLWSSTrigger(t *testing.T) {
	p := MustNew("malthusian?parks=0&lwss=8&hold=1")
	prev := snap(0, "tas", "hashmap", 0, 0, 0, 0)
	// Wide recent working set alone demotes (parks trigger disabled).
	cur := snap(0, "tas", "hashmap", 0, 1000, 0, 12)
	if ls, _, swap := p.Decide(prev, cur); !swap || ls != DefaultHotLockSpec {
		t.Fatalf("LWSS trigger: %q, %v", ls, swap)
	}
	// Working set narrows below the threshold: restore.
	prev, cur = cur, snap(0, "mcscr-stp", "hashmap", 0, 2000, 0, 3)
	if ls, _, swap := p.Decide(prev, cur); !swap || ls != "tas" {
		t.Fatalf("LWSS restore: %q, %v", ls, swap)
	}
}

// TestMalthusianNoFlapping drives a stripe that oscillates hot/calm every
// interval: with hold=2 the signal never persists, so the policy must
// never swap in either direction.
func TestMalthusianNoFlapping(t *testing.T) {
	p := MustNew("malthusian?parks=100&lwss=0&hold=2")
	var parks uint64
	prev := snap(0, "mcs-stp", "hashmap", parks, 0, 0, 0)
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			parks += 500 // hot interval
		} else {
			parks += 1 // calm interval
		}
		cur := snap(0, "mcs-stp", "hashmap", parks, 0, 0, 0)
		if ls, bs, swap := p.Decide(prev, cur); swap {
			t.Fatalf("flapped at interval %d: %q, %q", i, ls, bs)
		}
		prev = cur
	}
}

// TestMalthusianBorderlineHysteresis: a demoted stripe sitting in the
// hysteresis band (above half the threshold, below the threshold) must
// stay demoted forever — the band is sticky by design.
func TestMalthusianBorderlineHysteresis(t *testing.T) {
	p := MustNew("malthusian?parks=100&lwss=0&hold=1")
	var parks uint64
	prev := snap(0, "mcs-stp", "hashmap", parks, 0, 0, 0)
	parks += 200
	cur := snap(0, "mcs-stp", "hashmap", parks, 0, 0, 0)
	if _, _, swap := p.Decide(prev, cur); !swap {
		t.Fatal("did not demote")
	}
	for i := 0; i < 20; i++ {
		parks += 75 // in (50, 100): neither hot nor calm
		prev, cur = cur, snap(0, "mcscr-stp", "hashmap", parks, 0, 0, 0)
		if _, _, swap := p.Decide(prev, cur); swap {
			t.Fatalf("swapped inside the hysteresis band at interval %d", i)
		}
	}
}

func TestMalthusianAlreadyHot(t *testing.T) {
	// A stripe already running the hot lock is left alone no matter how
	// collapsed it looks — including when its spec carries parameters
	// the bare hot= default lacks: demoting "mcscr-stp?fairness=500" to
	// "mcscr-stp" would discard the tuning and churn the queue.
	for _, spec := range []string{DefaultHotLockSpec, "mcscr-stp?fairness=500&spin=128"} {
		p := MustNew("malthusian?parks=10&hold=1")
		prev := snap(0, spec, "hashmap", 0, 0, 0, 64)
		cur := snap(0, spec, "hashmap", 1<<20, 1<<20, 0, 64)
		if _, _, swap := p.Decide(prev, cur); swap {
			t.Fatalf("swapped a stripe already on the hot lock (%q)", spec)
		}
	}
}

func TestScanawareFlipsAndRestores(t *testing.T) {
	p := MustNew("scanaware?scanfrac=0.5&hold=2")
	prev := snap(1, "tas", "hashmap", 0, 0, 0, 0)

	// Scan-dominated intervals (share 1.0 — scans rejected by hashmap,
	// so acquires stay 0 while attempts mount).
	cur := snap(1, "tas", "hashmap", 0, 0, 100, 0)
	if _, _, swap := p.Decide(prev, cur); swap {
		t.Fatal("flipped after one interval (hold=2)")
	}
	prev, cur = cur, snap(1, "tas", "hashmap", 0, 0, 200, 0)
	ls, bs, swap := p.Decide(prev, cur)
	if !swap || ls != "" || bs != DefaultOrderedSpec {
		t.Fatalf("flip Decide = %q, %q, %v want \"\", %q, true", ls, bs, swap, DefaultOrderedSpec)
	}

	// Scans fade (share <= 0.25 of acquisitions): restore the hashmap.
	prev = snap(1, "tas", DefaultOrderedSpec, 0, 1000, 200, 0)
	cur = snap(1, "tas", DefaultOrderedSpec, 0, 2000, 210, 0) // 10/1000
	if _, _, swap := p.Decide(prev, cur); swap {
		t.Fatal("restored after one calm interval")
	}
	prev, cur = cur, snap(1, "tas", DefaultOrderedSpec, 0, 3000, 215, 0)
	ls, bs, swap = p.Decide(prev, cur)
	if !swap || bs != "hashmap" {
		t.Fatalf("restore Decide = %q, %q, %v want hashmap back", ls, bs, swap)
	}
}

func TestScanawareIdleAndNoFlap(t *testing.T) {
	p := MustNew("scanaware?scanfrac=0.5&hold=2")
	prev := snap(0, "tas", "hashmap", 0, 0, 0, 0)
	// One hot interval...
	cur := snap(0, "tas", "hashmap", 0, 0, 100, 0)
	if _, _, swap := p.Decide(prev, cur); swap {
		t.Fatal("flipped early")
	}
	// ...then idle intervals: no evidence, no decay, no flip.
	for i := 0; i < 5; i++ {
		prev, cur = cur, snap(0, "tas", "hashmap", 0, 0, 100, 0)
		if _, _, swap := p.Decide(prev, cur); swap {
			t.Fatal("flipped on an idle interval")
		}
	}
	// Evidence survives the idle gap: the next hot interval completes
	// the hold and flips.
	prev, cur = cur, snap(0, "tas", "hashmap", 0, 0, 200, 0)
	if _, bs, swap := p.Decide(prev, cur); !swap || bs != DefaultOrderedSpec {
		t.Fatalf("idle gap decayed the signal: %q, %v", bs, swap)
	}

	// A fresh policy fed an oscillating scan share around the threshold
	// never accumulates hold consecutive hot intervals — no flip, ever.
	p2 := MustNew("scanaware?scanfrac=0.5&hold=2")
	scans, acqs := uint64(0), uint64(0)
	prev = snap(0, "tas", "hashmap", 0, 0, 0, 0)
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			scans += 100 // all-scan interval
		} else {
			acqs += 1000 // all-point interval
		}
		cur = snap(0, "tas", "hashmap", 0, acqs, scans, 0)
		if _, _, swap := p2.Decide(prev, cur); swap {
			t.Fatalf("scanaware flapped at interval %d", i)
		}
		prev = cur
	}
}

// TestRejectedSwapResync: when a decided swap never lands (Map.Reconfigure
// rejects a bad programmatic target, or another actor swaps first), the
// policy must resync from the observed stripe state and keep retrying
// while the signal persists — not believe its own memory of a swap that
// did not happen.
func TestRejectedSwapResync(t *testing.T) {
	// malthusian with an unbuildable hot target (programmatic options
	// are not pre-validated, unlike the hot= spec parameter).
	p := MustNew("malthusian?parks=10&lwss=0&hold=1", WithHotLockSpec("no-such-lock"))
	var parks uint64
	prev := snap(0, "mcs-stp", "hashmap", parks, 0, 0, 0)
	for i := 0; i < 3; i++ {
		parks += 100
		cur := snap(0, "mcs-stp", "hashmap", parks, 0, 0, 0) // swap rejected: spec unchanged
		ls, _, swap := p.Decide(prev, cur)
		if !swap || ls != "no-such-lock" {
			t.Fatalf("interval %d: Decide = %q, %v — stopped retrying after a rejected swap", i, ls, swap)
		}
		prev = cur
	}

	// scanaware with an unbuildable ordered target.
	ps := MustNew("scanaware?scanfrac=0.5&hold=1", WithOrderedSpec("no-such-backend"))
	var scanned uint64
	sprev := snap(0, "tas", "hashmap", 0, 0, scanned, 0)
	for i := 0; i < 3; i++ {
		scanned += 100
		cur := snap(0, "tas", "hashmap", 0, 0, scanned, 0) // flip rejected: still unordered
		_, bs, swap := ps.Decide(sprev, cur)
		if !swap || bs != "no-such-backend" {
			t.Fatalf("interval %d: Decide = %q, %v — stopped retrying after a rejected flip", i, bs, swap)
		}
		sprev = cur
	}
}

// TestScanawareRejectedScansDenominator: on an unordered stripe, scan
// attempts are rejected before any lock acquisition, so they are not in
// the acquires delta; the share must still mean "scan fraction of the
// stripe's traffic" — 500 rejected scans against 1000 point ops is 1/3,
// below a 0.5 threshold, not 500/1000 = 0.5.
func TestScanawareRejectedScansDenominator(t *testing.T) {
	p := MustNew("scanaware?scanfrac=0.5&hold=1")
	var scansSeen, acq uint64
	prev := snap(0, "tas", "hashmap", 0, acq, scansSeen, 0)
	for i := 0; i < 5; i++ {
		scansSeen += 500
		acq += 1000 // point ops only: rejected scans never acquired
		cur := snap(0, "tas", "hashmap", 0, acq, scansSeen, 0)
		if _, _, swap := p.Decide(prev, cur); swap {
			t.Fatalf("interval %d: flipped at a true scan share of 1/3 (threshold 0.5)", i)
		}
		prev = cur
	}
	// At a true share of 0.6 (1500 scans vs 1000 point ops), it flips.
	scansSeen += 1500
	acq += 1000
	cur := snap(0, "tas", "hashmap", 0, acq, scansSeen, 0)
	if _, bs, swap := p.Decide(prev, cur); !swap || bs != DefaultOrderedSpec {
		t.Fatalf("true share 0.6 did not flip: %q, %v", bs, swap)
	}
}

// TestScanawareMonitoringNoise: the controller's own per-tick snapshot
// acquires every stripe lock, so a pure traffic lull still shows a few
// acquisitions per interval. Those must not read as "calm" on a flipped
// stripe (which would restore the unordered backend and pay two O(keys)
// migrations per lull) nor reset accumulated hot evidence pre-flip.
func TestScanawareMonitoringNoise(t *testing.T) {
	p := MustNew("scanaware?scanfrac=0.5&hold=1")
	// Flip first: one genuinely scan-dominated interval.
	prev := snap(0, "tas", "hashmap", 0, 0, 0, 0)
	cur := snap(0, "tas", "hashmap", 0, 0, 100, 0)
	if _, bs, swap := p.Decide(prev, cur); !swap || bs != DefaultOrderedSpec {
		t.Fatalf("did not flip: %q, %v", bs, swap)
	}
	// A long lull where only the monitor touches the stripe (3 acquires
	// per interval, no scans): never restores.
	acq := uint64(0)
	prev = snap(0, "tas", DefaultOrderedSpec, 0, acq, 100, 0)
	for i := 0; i < 50; i++ {
		acq += 3
		cur = snap(0, "tas", DefaultOrderedSpec, 0, acq, 100, 0)
		if _, bs, swap := p.Decide(prev, cur); swap {
			t.Fatalf("monitoring noise restored the backend at interval %d (%q)", i, bs)
		}
		prev = cur
	}
}

// TestScanawareZeroFracDisabled: scanfrac=0 disables the policy (the
// malthusian "0 disables" convention) — without that rule every interval
// would read as both hot (share >= 0) and calm (share <= 0), migrating
// the stripe back and forth forever on pure point traffic.
func TestScanawareZeroFracDisabled(t *testing.T) {
	p := MustNew("scanaware?scanfrac=0&hold=1")
	var acq uint64
	prev := snap(0, "tas", "hashmap", 0, acq, 0, 0)
	for i := 0; i < 10; i++ {
		acq += 1000
		cur := snap(0, "tas", "hashmap", 0, acq, 0, 0)
		if _, bs, swap := p.Decide(prev, cur); swap {
			t.Fatalf("scanfrac=0 swapped at interval %d (%q)", i, bs)
		}
		prev = cur
	}
}

func TestScanawareAlreadyOrdered(t *testing.T) {
	// Any ordered backend already serves scans: flipping "rbtree" (or a
	// parameterized "skiplist?seed=7") to the target would be an O(keys)
	// migration for zero functional gain.
	p := MustNew("scanaware?hold=1&scanfrac=0.1")
	for _, spec := range []string{"skiplist", "rbtree", "skiplist?seed=7"} {
		prev := snap(0, "tas", spec, 0, 0, 0, 0)
		cur := snap(0, "tas", spec, 0, 0, 1000, 0)
		if _, _, swap := p.Decide(prev, cur); swap {
			t.Fatalf("flipped a stripe already ordered (%q)", spec)
		}
	}
}

// TestPolicyAgainstLiveMap wires a registry policy against real map
// snapshots, deterministically: a short HistoryWindow makes RecentLWSS
// the trailing working set of the last 8 admissions, which single-
// threaded identified traffic can widen (8 distinct client ids) and
// narrow (8 admissions by one id) at will. The malthusian policy must
// demote the hammered stripe, leave the idle stripe alone, and restore
// when the working set narrows. This is the integration seam the unit
// snapshots above mock.
func TestPolicyAgainstLiveMap(t *testing.T) {
	m := shard.MustNew(shard.Config{
		Stripes: 2, LockSpec: "tas", HistoryCap: 1 << 12, HistoryWindow: 8,
	})
	pol := MustNew("malthusian?parks=0&lwss=4&hold=1")
	key := uint64(0)
	idx := m.StripeFor(key)
	other := 1 - idx

	prev := m.Snapshot()
	for id := 0; id < 8; id++ {
		ctx := shard.WithClientID(context.Background(), id)
		if _, err := m.PutContext(ctx, key, 1); err != nil {
			t.Fatal(err)
		}
	}
	cur := m.Snapshot()
	if got := cur.Stripes[idx].Fairness.RecentLWSS; got != 8 {
		t.Fatalf("RecentLWSS=%v want 8", got)
	}
	if _, _, swap := pol.Decide(prev.Stripes[other], cur.Stripes[other]); swap {
		t.Fatal("demoted the idle stripe")
	}
	ls, bs, swap := pol.Decide(prev.Stripes[idx], cur.Stripes[idx])
	if !swap || ls != DefaultHotLockSpec {
		t.Fatalf("Decide = %q, %q, %v want demote to %q", ls, bs, swap, DefaultHotLockSpec)
	}
	if err := m.Reconfigure(idx, ls, bs); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.StripeSpecs(idx); got != DefaultHotLockSpec {
		t.Fatalf("stripe %d spec %q after demote", idx, got)
	}

	// Narrow the trailing working set to one client: calm, restore.
	ctx := shard.WithClientID(context.Background(), 0)
	for i := 0; i < 8; i++ {
		if _, err := m.PutContext(ctx, key, 2); err != nil {
			t.Fatal(err)
		}
	}
	prev, cur = cur, m.Snapshot()
	ls, _, swap = pol.Decide(prev.Stripes[idx], cur.Stripes[idx])
	if !swap || ls != "tas" {
		t.Fatalf("restore Decide = %q, %v want tas back", ls, swap)
	}
	if err := m.Reconfigure(idx, ls, ""); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.StripeSpecs(idx); got != "tas" {
		t.Fatalf("stripe %d spec %q after restore", idx, got)
	}
}
