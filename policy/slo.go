package policy

import (
	"repro/internal/core"
	"repro/shard"
)

func init() {
	Register(Registration{
		Name:    "slo",
		Summary: "defends a deadline-miss budget with two-window burn rates: demotes to hot= when both burn hot, restores on sustained calm; target=/fast=/slow=/min=",
		Build: func(opts ...Option) Policy {
			cfg := resolve(opts)
			return &slo{
				target: cfg.sloTarget,
				fast:   cfg.sloFast,
				slow:   cfg.sloSlow,
				min:    cfg.sloMin,
				hot:    cfg.hotLock,
				st:     make(map[int]*sloState),
			}
		},
	})
}

// slo steers each stripe by the objective itself instead of a mechanism
// proxy: where "malthusian" watches parks and working-set width, slo
// watches the deadline-miss rate the service actually promised to keep
// (StripeSnapshot.DeadlineAttempts/DeadlineMisses) and reconfigures the
// stripe's lock when the budget is burning. The alerting logic is the
// SRE two-window burn-rate pattern, adapted from paging humans to
// swapping locks:
//
//   - Each non-idle controller interval (one with at least one
//     deadline-bounded arrival) contributes a (misses, attempts) sample
//     to a ring of the last slow samples. Idle intervals contribute
//     nothing — evidence is retained, not diluted, across lulls.
//   - A window's burn rate is the mean of its intervals' miss rates —
//     each interval weighs the same, however much traffic it carried.
//     Pooling the raw counters instead would weight by volume, and the
//     paper's failure mode is exactly a volume cliff: a collapsing
//     stripe serves a fraction of its healthy throughput, so a pooled
//     slow window lets the healthy history's attempt count bury a storm
//     that is missing nearly every deadline it sees. Per-interval means
//     make the windows measure time spent burning, not traffic spent
//     burning.
//   - Demote — swap the stripe's lock to the culling/passivating hot=
//     spec — when the burn rate is at or above target over BOTH windows:
//     the fast window (last fast samples) says the budget is burning
//     *now*, the slow window (all retained samples) says it is not a
//     one-interval blip. At storm onset on a fresh stripe the two
//     windows coincide, so the demotion lands within fast intervals —
//     the fast window is the reaction-time bound; against a full calm
//     ring the slow window concedes after ~target·slow further storm
//     intervals.
//   - Restore the original spec when the burn rate is at or below
//     target/2 over both windows AND the slow window consists entirely
//     of post-demotion samples. The halved re-entry band is the same
//     hysteresis "malthusian" uses; the full-window requirement is the
//     stronger half: post-demotion calm intervals drag the slow mean
//     under the band while storm samples are still in the ring, and a
//     rate-only rule would restore mid-incident on that decay (then
//     promptly re-demote — flapping). Demanding slow consecutive
//     intervals of post-demotion evidence makes "sustained calm" mean
//     sustained.
//
// Both decisions also require the fast window to hold at least min
// deadline-bounded attempts: a near-idle stripe's single missed op is
// not a 100% burn rate, in either direction.
//
// The miss counters survive Reconfigure by design (they belong to the
// stripe, not the lock), so the policy reads one coherent series across
// its own swaps.
type slo struct {
	target float64
	fast   int
	slow   int
	min    uint64
	hot    string
	st     map[int]*sloState
}

type sloSample struct{ misses, attempts uint64 }

type sloState struct {
	orig        string // lock spec to restore on recovery
	demoted     bool
	sinceDemote int // non-idle intervals observed since the demotion

	ring []sloSample // last slow non-idle intervals
	head int         // next write position
	n    int         // filled
}

func (s *sloState) push(misses, attempts uint64) {
	s.ring[s.head] = sloSample{misses, attempts}
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	if s.demoted {
		s.sinceDemote++
	}
}

// tail reports the most recent k samples (all retained samples when k
// exceeds the fill) as a burn rate — the mean of the intervals'
// individual miss rates — plus the pooled attempt count for the min=
// evidence floor. Every retained sample is non-idle, so the per-interval
// rates are always well defined.
func (s *sloState) tail(k int) (rate float64, attempts uint64) {
	if k > s.n {
		k = s.n
	}
	if k == 0 {
		return 0, 0
	}
	for i := 1; i <= k; i++ {
		smp := s.ring[(s.head-i+len(s.ring))%len(s.ring)]
		rate += float64(smp.misses) / float64(smp.attempts)
		attempts += smp.attempts
	}
	return rate / float64(k), attempts
}

func (p *slo) state(i int) *sloState {
	s := p.st[i]
	if s == nil {
		s = &sloState{ring: make([]sloSample, p.slow)}
		p.st[i] = s
	}
	return s
}

func (p *slo) Decide(prev, cur shard.StripeSnapshot) (lockSpec, backendSpec string, swap bool) {
	if p.target <= 0 {
		return "", "", false
	}
	s := p.state(cur.Index)
	if s.demoted && !sameLock(cur.LockSpec, p.hot) {
		// The demotion never landed, or another actor swapped the lock
		// since. Resync to the observed state (same rule as malthusian);
		// the ring keeps its evidence — the miss series is about the
		// stripe, not about what we believed we did to it.
		s.demoted = false
	}
	dAttempts := core.SatSub(cur.DeadlineAttempts, prev.DeadlineAttempts)
	dMisses := core.SatSub(cur.DeadlineMisses, prev.DeadlineMisses)
	if dAttempts == 0 {
		// Idle interval: no deadline-bounded traffic, no evidence either
		// way. The ring is left alone so a lull neither ages out a storm
		// nor manufactures calm.
		return "", "", false
	}
	s.push(dMisses, dAttempts)
	if s.n < p.fast {
		return "", "", false
	}
	fastRate, fAttempts := s.tail(p.fast)
	if fAttempts < p.min {
		return "", "", false
	}
	slowRate, _ := s.tail(p.slow)
	if !s.demoted {
		if sameLock(cur.LockSpec, p.hot) {
			// Already running the hot lock (configured that way, possibly
			// with tuned parameters): a demotion would discard those
			// parameters and churn the queue for nothing.
			return "", "", false
		}
		if fastRate >= p.target && slowRate >= p.target {
			s.orig = cur.LockSpec
			s.demoted = true
			s.sinceDemote = 0
			return p.hot, "", true
		}
		return "", "", false
	}
	if s.sinceDemote >= p.slow && fastRate <= p.target/2 && slowRate <= p.target/2 {
		s.demoted = false
		return s.orig, "", true
	}
	return "", "", false
}
