// Package repro is a from-scratch Go reproduction of Dave Dice,
// "Malthusian Locks" (EuroSys 2017; extended version arXiv:1511.06035).
//
// The repository provides:
//
//   - package lock: the Malthusian lock family (MCSCR, LIFO-CR, LOITER)
//     plus classic baselines (TAS, ticket, CLH, MCS) as real goroutine
//     locks satisfying sync.Locker, with cache-line-isolated hot fields
//     and striped, optionally disabled (WithStats) event counters. Locks
//     are built from registry specs (lock.New("mcscr-stp?fairness=500"))
//     and every implementation satisfies lock.ContextMutex — acquisition
//     with context cancellation and deadlines (LockContext, TryLockFor),
//     with waiter-excision protocols specified in DESIGN.md;
//   - packages condvar and semaphore: concurrency-restricting waiter
//     admission (mostly-LIFO) for condition variables and semaphores;
//     condvar adds context-aware waiting (WaitContext);
//   - package metrics: the paper's fairness instruments (LWSS, MTTR,
//     Gini, RSTDDEV, trailing-window RecentLWSS);
//   - package shard: a sharded, deadline-aware KV store whose per-stripe
//     lock and table are registry specs, with cross-stripe ordered scans
//     (full or chunked), per-stripe fairness snapshots, live stripe
//     reconfiguration (Map.Reconfigure), and an adaptation controller;
//   - package store: the stripe-backend registry (hashmap, skiplist,
//     rbtree; store.Ordered for range scans);
//   - package policy: the adaptation-policy registry the shard
//     controller drives (static, malthusian, scanaware);
//   - package sim (with sim/cache): a deterministic discrete-event model
//     of the paper's SPARC T5 evaluation machine — cores, strands,
//     pipeline sharing, shared LLC, DTLBs, scheduler, park/unpark and
//     power — standing in for hardware this environment lacks;
//   - package workloads: the eleven evaluation benchmarks of §6;
//   - package experiments: regeneration of every figure and table;
//   - package model: the closed-form Figure 1 curve.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-versus-measured results.
// The benchmarks in bench_test.go regenerate each figure at reduced
// sweep size; cmd/figures produces the full versions.
package repro
