package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus the ablations called out in DESIGN.md §5. Each
// figure benchmark runs a trimmed thread sweep per iteration and reports
// the headline quantities as custom metrics, so
//
//	go test -bench=Fig -benchmem
//
// regenerates the whole evaluation in miniature. cmd/figures produces the
// full-sweep TSVs.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/experiments"
	"repro/lock"
	"repro/sim"
	"repro/workloads"
)

func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Threads: []int{1, 5, 32}, Measure: 6_000_000}
}

// reportSeries reports each series' throughput at the highest thread
// count as a metric named after the lock.
func reportSeries(b *testing.B, fig experiments.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			continue
		}
		p := s.Points[len(s.Points)-1]
		b.ReportMetric(p.Y, s.Label+"_steps/s")
	}
}

func BenchmarkFig01Model(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		fig := experiments.Fig1(experiments.Options{})
		sink += fig.Series[0].Points[0].Y
	}
	_ = sink
}

func BenchmarkFig03RandArray(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig3(benchOpts()))
	}
}

func BenchmarkFig04Indepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(experiments.Options{Measure: 6_000_000})
		for _, r := range rows {
			b.ReportMetric(r.Throughput, r.Lock+"_steps/s")
			b.ReportMetric(r.AvgLWSS, r.Lock+"_LWSS")
		}
	}
}

func BenchmarkFig05RingWalker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig5(benchOpts()))
	}
}

func BenchmarkFig06StressLatency(b *testing.B) {
	o := benchOpts()
	o.Threads = []int{1, 16, 64}
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig6(o))
	}
}

func BenchmarkFig07Mmicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig7(benchOpts()))
	}
}

func BenchmarkFig08KVStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig8(benchOpts()))
	}
}

func BenchmarkFig09HashDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig9(benchOpts()))
	}
}

func BenchmarkFig10ProdCons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig10(benchOpts()))
	}
}

func BenchmarkFig11Keymap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig11(benchOpts()))
	}
}

func BenchmarkFig12LRUCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig12(benchOpts()))
	}
}

func BenchmarkFig13Interp(b *testing.B) {
	o := benchOpts()
	o.Threads = []int{1, 16}
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig13(o))
	}
}

func BenchmarkFig14BufferPool(b *testing.B) {
	o := benchOpts()
	o.Threads = []int{32}
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig14(o))
	}
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

func runRandArray(spec sim.LockSpec, threads, scale int, mutate func(*sim.Config)) sim.Result {
	cfg := sim.DefaultConfig(scale)
	workloads.ConfigureLargePages(&cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	e := sim.New(cfg)
	l := e.NewLock(spec)
	workloads.BuildRandArray(e, l, threads, workloads.DefaultRandArray())
	return e.RunStandard(6_000_000)
}

// BenchmarkAblationFairnessP sweeps the Bernoulli promotion period: the
// fairness/throughput trade-off of §4 ("The probability parameter is
// tunable and reflects the trade-off between fairness and throughput").
func BenchmarkAblationFairnessP(b *testing.B) {
	for _, period := range []uint64{1, 10, 100, 1000, sim.NoFairness} {
		name := "never"
		if period != sim.NoFairness {
			name = map[uint64]string{1: "1", 10: "10", 100: "100", 1000: "1000"}[period]
		}
		b.Run("period="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runRandArray(sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP, FairnessPeriod: period}, 32, 16, nil)
				b.ReportMetric(res.StepsPerSec, "steps/s")
				b.ReportMetric(res.Fairness.Gini, "Gini")
				b.ReportMetric(res.Fairness.AvgLWSS, "LWSS")
			}
		})
	}
}

// BenchmarkAblationSpinBudget sweeps the spin-then-park spin phase (§5.1).
func BenchmarkAblationSpinBudget(b *testing.B) {
	for _, budget := range []sim.Cycles{0, 5_000, 25_000, 100_000} {
		b.Run(map[sim.Cycles]string{0: "park-only", 5_000: "5k", 25_000: "25k", 100_000: "100k"}[budget], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runRandArray(sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP}, 32, 16,
					func(c *sim.Config) { c.SpinBudget = budget })
				b.ReportMetric(res.StepsPerSec, "steps/s")
				b.ReportMetric(float64(res.VoluntaryCtxSwitches), "vctx")
			}
		})
	}
}

// BenchmarkAblationCulling compares MCSCR against plain MCS (identical
// lock minus the CR machinery): the contribution of culling itself.
func BenchmarkAblationCulling(b *testing.B) {
	for _, lc := range []struct {
		name string
		kind sim.LockKind
	}{{"with-culling", sim.KindMCSCR}, {"without", sim.KindMCS}} {
		b.Run(lc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runRandArray(sim.LockSpec{Kind: lc.kind, Mode: sim.ModeSTP}, 32, 16, nil)
				b.ReportMetric(res.StepsPerSec, "steps/s")
				b.ReportMetric(float64(res.CacheStats.LLCMisses), "L3miss")
			}
		})
	}
}

// BenchmarkAblationScale checks shape invariance across the capacity
// scale divisor: the CR-over-FIFO throughput ratio should be stable.
func BenchmarkAblationScale(b *testing.B) {
	for _, scale := range []int{8, 16, 32} {
		b.Run(map[int]string{8: "scale8", 16: "scale16", 32: "scale32"}[scale], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cr := runRandArray(sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP}, 32, scale, nil)
				fifo := runRandArray(sim.LockSpec{Kind: sim.KindMCS, Mode: sim.ModeSpin}, 32, scale, nil)
				b.ReportMetric(cr.StepsPerSec/fifo.StepsPerSec, "CR/FIFO")
			}
		})
	}
}

// BenchmarkAblationStagger demonstrates the two-basin behaviour recorded
// in DESIGN.md: mass simultaneous thread arrival wedges the CR lock in a
// churn regime; realistic staggered startup converges to the paper's
// equilibrium.
func BenchmarkAblationStagger(b *testing.B) {
	for _, st := range []sim.Cycles{0, 1_000_000} {
		b.Run(map[sim.Cycles]string{0: "simultaneous", 1_000_000: "staggered"}[st], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runRandArray(sim.LockSpec{Kind: sim.KindMCSCR, Mode: sim.ModeSTP}, 32, 16,
					func(c *sim.Config) { c.StartStagger = st })
				b.ReportMetric(res.StepsPerSec, "steps/s")
				b.ReportMetric(res.Fairness.AvgLWSS, "LWSS")
			}
		})
	}
}

// --- Real goroutine lock microbenchmarks ------------------------------------

func benchLock(b *testing.B, m lock.Mutex, goroutines int) {
	b.Helper()
	var wg sync.WaitGroup
	per := b.N / goroutines
	if per == 0 {
		per = 1
	}
	b.ResetTimer()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Lock()
				m.Unlock()
			}
		}()
	}
	wg.Wait()
}

// realLocks enumerates the goroutine-lock microbenchmark subjects via
// the registry — the single source of truth for lock names. Null is
// excluded (it measures only harness overhead).
func realLocks(b *testing.B) []string {
	b.Helper()
	var names []string
	for _, n := range lock.Names() {
		if n != "null" {
			names = append(names, n)
		}
	}
	return names
}

func BenchmarkLockUncontended(b *testing.B) {
	for _, name := range realLocks(b) {
		b.Run(name, func(b *testing.B) { benchLock(b, lock.MustNew(name), 1) })
	}
}

func BenchmarkLockContended(b *testing.B) {
	for _, name := range realLocks(b) {
		b.Run(name, func(b *testing.B) { benchLock(b, lock.MustNew(name), 8) })
	}
}

// BenchmarkLockContextUncontended measures LockContext(Background) on the
// uncontended path: the acceptance gate for keeping the cancellation
// machinery off the fast path (it should match BenchmarkLockUncontended
// up to the cost of one Done() == nil check).
func BenchmarkLockContextUncontended(b *testing.B) {
	ctx := context.Background()
	for _, name := range realLocks(b) {
		b.Run(name, func(b *testing.B) {
			m := lock.MustNew(name).(lock.ContextMutex)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.LockContext(ctx); err != nil {
					b.Fatal(err)
				}
				m.Unlock()
			}
		})
	}
}

// BenchmarkLockContextDeadline measures the contended cancellable path: 8
// goroutines acquiring through LockContext with a live (generous)
// deadline, so the context plumbing and deadline timers are on the path
// but cancellations are rare.
func BenchmarkLockContextDeadline(b *testing.B) {
	for _, name := range realLocks(b) {
		b.Run(name, func(b *testing.B) {
			m := lock.MustNew(name).(lock.ContextMutex)
			var wg sync.WaitGroup
			const goroutines = 8
			per := b.N / goroutines
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
						if err := m.LockContext(ctx); err == nil {
							m.Unlock()
						}
						cancel()
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkExtNUMA regenerates the §9.1 MCSCRN extension experiment at
// reduced size, reporting throughput and lock-migration rate.
func BenchmarkExtNUMA(b *testing.B) {
	o := benchOpts()
	o.Threads = []int{32}
	for i := 0; i < b.N; i++ {
		fig := experiments.FigNUMA(o)
		reportSeries(b, fig)
		for label, rate := range experiments.MigrationRates(fig) {
			b.ReportMetric(rate, label+"_migrations/acq")
		}
	}
}
