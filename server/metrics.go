package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/shard"
)

// metricsSample is what the background sampler publishes and the
// /metrics handler renders: one lite snapshot plus the delta against
// the previous sample. The handler itself never snapshots — a scrape
// landing during a stripe collapse must read the cache, not queue
// behind the collapsed lock it is trying to observe (the controller's
// delta-cache pattern, reused).
type metricsSample struct {
	snap     shard.Snapshot
	delta    shard.SnapshotDelta
	interval time.Duration
}

// sampleLoop drives Sample on the configured cadence until drain.
func (s *Server) sampleLoop() {
	defer s.mwg.Done()
	t := time.NewTicker(s.cfg.MetricsInterval)
	defer t.Stop()
	for {
		select {
		case <-s.acceptCtx.Done():
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// Sample takes one lite snapshot and publishes it (with its delta
// against the previous sample) for the /metrics handler. Exported as a
// deterministic test hook: tests call it instead of waiting out the
// sampler cadence.
func (s *Server) Sample() {
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	snap, err := s.m.SnapshotLite(ctx)
	if err != nil {
		return // keep the previous sample; a collapsed stripe outlasts one tick
	}
	cur := &metricsSample{snap: snap, interval: s.cfg.MetricsInterval}
	if prev := s.metricsCache.Load(); prev != nil {
		cur.delta = snap.Sub(prev.snap)
	}
	s.metricsCache.Store(cur)
}

// handleMetrics renders the text exposition format. It reads the
// sampler's cache and the server/fault atomics only; the patient
// snapshot family is off-limits on this path by construction and by
// the analyzer.
//
//lockcheck:nosnapshot
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.Grow(4096)

	// Server-plane counters.
	fmt.Fprintf(&b, "# TYPE shardd_connections_accepted_total counter\n")
	fmt.Fprintf(&b, "shardd_connections_accepted_total %d\n", s.accepted.Load())
	fmt.Fprintf(&b, "shardd_connections_active %d\n", s.active.Load())
	fmt.Fprintf(&b, "shardd_pool_waiting %d\n", s.poolWaiting.Load())
	fmt.Fprintf(&b, "shardd_pool_culled_total %d\n", s.poolCulled.Load())
	fmt.Fprintf(&b, "shardd_ops_total %d\n", s.ops.Load())
	fmt.Fprintf(&b, "shardd_bad_frames_total %d\n", s.badFrames.Load())
	if s.ctrl != nil {
		fmt.Fprintf(&b, "shardd_ctrl_swaps_total %d\n", s.ctrl.Swaps())
		fmt.Fprintf(&b, "shardd_ctrl_rejected_total %d\n", s.ctrl.Rejected())
	}

	// Injector evidence (chaos over the wire).
	s.faultMu.Lock()
	set := s.faultSet
	s.faultMu.Unlock()
	if set != nil {
		st := set.Stats()
		fmt.Fprintf(&b, "shardd_fault_armed %d\n", boolMetric(set.Active()))
		fmt.Fprintf(&b, "shardd_fault_stalls_total %d\n", st.Stalls)
		fmt.Fprintf(&b, "shardd_fault_stall_ms_total %d\n", st.StallTime.Milliseconds())
		fmt.Fprintf(&b, "shardd_fault_reroutes_total %d\n", st.Reroutes)
		fmt.Fprintf(&b, "shardd_fault_surge_peak %d\n", st.SurgePeak)
	}

	sample := s.metricsCache.Load()
	if sample == nil {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write([]byte(b.String())) //nolint:errcheck
		return
	}
	snap, delta := sample.snap, sample.delta

	// Map rollups.
	fmt.Fprintf(&b, "shardd_len %d\n", snap.Len)
	fmt.Fprintf(&b, "shardd_swaps_total %d\n", snap.Swaps)
	fmt.Fprintf(&b, "shardd_scans_total %d\n", snap.Scans)
	fmt.Fprintf(&b, "shardd_deadline_attempts_total %d\n", snap.DeadlineAttempts)
	fmt.Fprintf(&b, "shardd_deadline_misses_total %d\n", snap.DeadlineMisses)
	for c := 0; c < shard.NumClasses; c++ {
		fmt.Fprintf(&b, "shardd_class_deadline_attempts_total{class=\"%d\"} %d\n", c, snap.ClassDeadlineAttempts[c])
		fmt.Fprintf(&b, "shardd_class_deadline_misses_total{class=\"%d\"} %d\n", c, snap.ClassDeadlineMisses[c])
	}
	fmt.Fprintf(&b, "shardd_lock_acquires_total %d\n", snap.Lock.Acquires)
	fmt.Fprintf(&b, "shardd_lock_parks_total %d\n", snap.Lock.Parks)
	fmt.Fprintf(&b, "shardd_lock_culls_total %d\n", snap.Lock.Culls)
	fmt.Fprintf(&b, "shardd_lock_cancels_total %d\n", snap.Lock.Cancels)
	fmt.Fprintf(&b, "shardd_lock_handoffs_total %d\n", snap.Lock.Handoffs)

	// Optimistic read path: hits are Gets that never touched a stripe
	// lock; fallbacks are the ones that exhausted their retry budget.
	// Read against shardd_lock_acquires_total these certify the
	// zero-lock read claim in production, not just in the bench.
	fmt.Fprintf(&b, "shardd_optimistic_hits_total %d\n", snap.OptimisticHits)
	fmt.Fprintf(&b, "shardd_optimistic_retries_total %d\n", snap.OptimisticRetries)
	fmt.Fprintf(&b, "shardd_optimistic_fallbacks_total %d\n", snap.OptimisticFallbacks)
	es := s.m.EpochStats()
	fmt.Fprintf(&b, "shardd_epoch_pinned %d\n", es.Pinned)
	fmt.Fprintf(&b, "shardd_epoch_retired_total %d\n", es.Retired)
	fmt.Fprintf(&b, "shardd_epoch_collected_total %d\n", es.Collected)
	fmt.Fprintf(&b, "shardd_epoch_advances_total %d\n", es.Advances)
	fmt.Fprintf(&b, "shardd_retired_descriptors %d\n", s.m.RetiredDescriptors())

	// Interval rates from the cached delta (zero until two samples).
	if sec := sample.interval.Seconds(); sec > 0 {
		fmt.Fprintf(&b, "shardd_interval_deadline_attempts %d\n", delta.DeadlineAttempts)
		fmt.Fprintf(&b, "shardd_interval_deadline_misses %d\n", delta.DeadlineMisses)
		if delta.DeadlineAttempts > 0 {
			fmt.Fprintf(&b, "shardd_interval_miss_rate %.6f\n",
				float64(delta.DeadlineMisses)/float64(delta.DeadlineAttempts))
		}
	}

	// Per-stripe detail: the counters an operator greps when one stripe
	// is the problem.
	for _, st := range snap.Stripes {
		i := st.Index
		fmt.Fprintf(&b, "shardd_stripe_len{stripe=\"%d\"} %d\n", i, st.Len)
		fmt.Fprintf(&b, "shardd_stripe_swaps_total{stripe=\"%d\"} %d\n", i, st.Swaps)
		fmt.Fprintf(&b, "shardd_stripe_deadline_attempts_total{stripe=\"%d\"} %d\n", i, st.DeadlineAttempts)
		fmt.Fprintf(&b, "shardd_stripe_deadline_misses_total{stripe=\"%d\"} %d\n", i, st.DeadlineMisses)
		for c := 0; c < shard.NumClasses; c++ {
			if st.ClassDeadlineAttempts[c] == 0 && st.ClassDeadlineMisses[c] == 0 {
				continue // suppress all-zero class series: stripes × classes lines add up
			}
			fmt.Fprintf(&b, "shardd_stripe_class_deadline_attempts_total{stripe=\"%d\",class=\"%d\"} %d\n", i, c, st.ClassDeadlineAttempts[c])
			fmt.Fprintf(&b, "shardd_stripe_class_deadline_misses_total{stripe=\"%d\",class=\"%d\"} %d\n", i, c, st.ClassDeadlineMisses[c])
		}
		if st.OptimisticHits != 0 || st.OptimisticRetries != 0 || st.OptimisticFallbacks != 0 {
			// Suppressed when all-zero (locked read path, or a stripe the
			// key distribution never reads): stripes × 3 silent lines.
			fmt.Fprintf(&b, "shardd_stripe_optimistic_hits_total{stripe=\"%d\"} %d\n", i, st.OptimisticHits)
			fmt.Fprintf(&b, "shardd_stripe_optimistic_retries_total{stripe=\"%d\"} %d\n", i, st.OptimisticRetries)
			fmt.Fprintf(&b, "shardd_stripe_optimistic_fallbacks_total{stripe=\"%d\"} %d\n", i, st.OptimisticFallbacks)
		}
		fmt.Fprintf(&b, "shardd_stripe_lock_parks_total{stripe=\"%d\"} %d\n", i, st.Lock.Parks)
		fmt.Fprintf(&b, "shardd_stripe_lock_cancels_total{stripe=\"%d\"} %d\n", i, st.Lock.Cancels)
		if st.Fairness.RecentLWSS > 0 {
			fmt.Fprintf(&b, "shardd_stripe_recent_lwss{stripe=\"%d\"} %.1f\n", i, st.Fairness.RecentLWSS)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write([]byte(b.String())) //nolint:errcheck
}

func boolMetric(b bool) int {
	if b {
		return 1
	}
	return 0
}
