package server_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/server"
	"repro/shard"
	"repro/wire"
)

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func dial(t *testing.T, s *server.Server) *wire.Client {
	t.Helper()
	cl, err := wire.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestE2ERoundTrips covers the data-plane verbs and the typed error
// replies over a real loopback connection.
func TestE2ERoundTrips(t *testing.T) {
	s := startServer(t, server.Config{Stripes: 4, BackendSpec: "skiplist"})
	defer s.Drain()
	cl := dial(t, s)

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	fresh, err := cl.Put(10, 100, time.Time{})
	if err != nil || !fresh {
		t.Fatalf("Put = %v, %v", fresh, err)
	}
	if fresh, _ := cl.Put(10, 101, time.Time{}); fresh {
		t.Fatal("second put reported fresh")
	}
	val, found, err := cl.Get(10, time.Time{})
	if err != nil || !found || val != 101 {
		t.Fatalf("Get = %d, %v, %v", val, found, err)
	}
	if _, found, _ := cl.Get(11, time.Time{}); found {
		t.Fatal("absent key found")
	}
	for k := uint64(20); k < 30; k++ {
		if _, err := cl.Put(k, k*2, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	n, err := cl.Scan(20, 29, 0, time.Time{}, func(k, v uint64) bool {
		if v != k*2 {
			t.Fatalf("scan pair %d=%d", k, v)
		}
		keys = append(keys, k)
		return true
	})
	if err != nil || n != 10 || len(keys) != 10 {
		t.Fatalf("Scan = %d pairs (%d seen), %v", n, len(keys), err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("scan out of order: %v", keys)
		}
	}
	// Bounded scan: max truncates.
	if n, _ := cl.Scan(20, 29, 3, time.Time{}, func(k, v uint64) bool { return true }); n != 3 {
		t.Fatalf("bounded scan returned %d pairs", n)
	}
	present, err := cl.Delete(10, time.Time{})
	if err != nil || !present {
		t.Fatalf("Delete = %v, %v", present, err)
	}

	// Expired deadline: typed ErrDeadline, and the server kept serving
	// the same connection afterwards.
	if _, _, err := cl.Get(20, time.Now().Add(-time.Second)); !errors.Is(err, wire.ErrDeadline) {
		t.Fatalf("expired deadline: %v", err)
	}
	if _, _, err := cl.Get(20, time.Time{}); err != nil {
		t.Fatalf("connection dead after deadline miss: %v", err)
	}

	info, err := cl.Info()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"server=shardd", "stripes=4", "backend=skiplist", "ordered=true"} {
		if !strings.Contains(info, want) {
			t.Fatalf("info missing %q:\n%s", want, info)
		}
	}
}

// TestE2EUnorderedScan pins the ErrUnordered reply on a hashmap-backed
// server.
func TestE2EUnorderedScan(t *testing.T) {
	s := startServer(t, server.Config{Stripes: 2, BackendSpec: "hashmap"})
	defer s.Drain()
	cl := dial(t, s)
	_, err := cl.Scan(0, 10, 0, time.Time{}, func(k, v uint64) bool { return true })
	if !errors.Is(err, wire.ErrUnordered) {
		t.Fatalf("scan on hashmap: %v", err)
	}
}

// TestE2EBadClass: a class byte outside the fixed class array is a
// typed reject, not an accounting corruption.
func TestE2EBadClass(t *testing.T) {
	s := startServer(t, server.Config{Stripes: 2})
	defer s.Drain()
	cl := dial(t, s)
	cl.Class = shard.NumClasses // one past the end
	if _, _, err := cl.Get(1, time.Time{}); !errors.Is(err, wire.ErrBadClass) {
		t.Fatalf("bad class: %v", err)
	}
	cl.Class = 0
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection should survive a bad-class reject: %v", err)
	}
}

// TestE2EBadFrame: a malformed header gets a typed reply and the
// connection is closed — framing past it cannot be trusted.
func TestE2EBadFrame(t *testing.T) {
	s := startServer(t, server.Config{Stripes: 2})
	defer s.Drain()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bad := make([]byte, wire.ReqHeaderSize)
	bad[0] = 99 // wrong version
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	var hdr [wire.RespHeaderSize]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	h, err := wire.ParseRespHeader(hdr[:])
	if err != nil || h.Status != wire.StatusBadFrame {
		t.Fatalf("bad frame reply: %+v, %v", h, err)
	}
	io.Copy(io.Discard, conn) // server closes after the reply
}

// TestE2EDeadlineStorm drives concurrent deadlined clients into a
// stalled stripe and checks the ledger: client-observed misses equal
// the map's DeadlineMisses, land in the right class buckets, and every
// miss reconciles to exactly one lock Cancels event — the shard layer's
// invariant, now measured across a network hop.
func TestE2EDeadlineStorm(t *testing.T) {
	s := startServer(t, server.Config{Stripes: 1, LockSpec: "mcs-stp"})
	defer s.Drain()

	// Stall every critical section long enough that a 1ms budget
	// cannot sit out the queue.
	admin := dial(t, s)
	if err := admin.FaultArm("stall?p=1&hold=2ms"); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Put(1, 1, time.Time{}); err != nil {
		t.Fatal(err)
	}

	const clients, opsEach = 4, 25
	var clientMisses, clientOps atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := wire.Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			cl.Class = uint8(1 + id%2)
			for j := 0; j < opsEach; j++ {
				_, _, err := cl.Get(1, time.Now().Add(time.Millisecond))
				switch {
				case err == nil:
					clientOps.Add(1)
				case errors.Is(err, wire.ErrDeadline):
					clientMisses.Add(1)
				default:
					t.Errorf("client %d: %v", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := admin.FaultDisarm(); err != nil {
		t.Fatal(err)
	}

	snap := s.Map().Snapshot()
	total := clientOps.Load() + clientMisses.Load()
	if total != clients*opsEach {
		t.Fatalf("lost requests: %d of %d accounted", total, clients*opsEach)
	}
	if clientMisses.Load() == 0 {
		t.Fatal("storm produced no misses — stall did not bite")
	}
	if got := int64(snap.DeadlineMisses); got != clientMisses.Load() {
		t.Fatalf("map misses %d != client-observed %d", got, clientMisses.Load())
	}
	if got := int64(snap.DeadlineAttempts); got != clients*opsEach {
		t.Fatalf("map attempts %d != %d sent", got, clients*opsEach)
	}
	// Exactly one lock cancel per miss: the reconciliation invariant.
	if snap.Lock.Cancels != snap.DeadlineMisses {
		t.Fatalf("Cancels %d != DeadlineMisses %d", snap.Lock.Cancels, snap.DeadlineMisses)
	}
	// Per-class: unclassified stayed empty, classes 1 and 2 carry it all.
	if snap.ClassDeadlineAttempts[0] != 0 {
		t.Fatalf("class 0 attempts = %d, want 0", snap.ClassDeadlineAttempts[0])
	}
	if sum := snap.ClassDeadlineAttempts[1] + snap.ClassDeadlineAttempts[2]; sum != snap.DeadlineAttempts {
		t.Fatalf("class sum %d != pooled %d", sum, snap.DeadlineAttempts)
	}

	// The wire FAULT stats verb reports the injected evidence.
	stats, err := admin.FaultStats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "armed=false") || !strings.Contains(stats, "stalls=") {
		t.Fatalf("fault stats:\n%s", stats)
	}
}

// TestE2EGracefulDrain: every request fully written to a served
// connection before drain gets its response — pipelined batches
// included — and the listener stops accepting.
func TestE2EGracefulDrain(t *testing.T) {
	s := startServer(t, server.Config{Stripes: 2, DrainGrace: 2 * time.Second})

	const clients, frames = 3, 50
	conns := make([]*net.TCPConn, clients)
	for i := range conns {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c.(*net.TCPConn)
	}
	// Round-trip a PING on each connection first: a dialed connection
	// still in the accept queue is invisible to Drain (it dies with the
	// listener), so the guarantee under test needs each serve loop
	// running before its batch is written.
	for i, c := range conns {
		if _, err := c.Write(wire.AppendPing(nil)); err != nil {
			t.Fatal(err)
		}
		hdr := make([]byte, wire.RespHeaderSize)
		if _, err := io.ReadFull(c, hdr); err != nil {
			t.Fatalf("conn %d ping: %v", i, err)
		}
		if h, err := wire.ParseRespHeader(hdr); err != nil || h.Status != wire.StatusOK {
			t.Fatalf("conn %d ping: %+v, %v", i, h, err)
		}
	}
	// Pipeline a batch of PUTs on each connection, then half-close so
	// the server sees EOF after the last frame instead of waiting out
	// the grace window.
	for i, c := range conns {
		var buf []byte
		for j := 0; j < frames; j++ {
			buf = wire.AppendPut(buf, 0, 0, uint64(i*frames+j), uint64(j))
		}
		if _, err := c.Write(buf); err != nil {
			t.Fatal(err)
		}
		if err := c.CloseWrite(); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- s.Drain() }()

	// Every pipelined request drains with a response.
	for i, c := range conns {
		got := 0
		hdr := make([]byte, wire.RespHeaderSize)
		for {
			if _, err := io.ReadFull(c, hdr); err != nil {
				break // EOF: server flushed and closed
			}
			h, err := wire.ParseRespHeader(hdr)
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, h.Len)
			if _, err := io.ReadFull(c, payload); err != nil {
				t.Fatal(err)
			}
			if h.Status != wire.StatusOK {
				t.Fatalf("conn %d resp %d: status %v", i, got, h.Status)
			}
			got++
		}
		c.Close()
		if got != frames {
			t.Fatalf("conn %d: %d responses for %d requests", i, got, frames)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := s.Map().Len(); got != clients*frames {
		t.Fatalf("map len %d after drain, want %d", got, clients*frames)
	}
	if _, err := net.DialTimeout("tcp", s.Addr(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestE2EPoolModel: the pool conn model serves a bounded set of
// connections; slots freed by closing connections admit the parked
// ones, and drain culls waiters instead of serving them.
func TestE2EPoolModel(t *testing.T) {
	s := startServer(t, server.Config{Stripes: 2, ConnModel: server.ConnPool, PoolSize: 2})
	defer s.Drain()

	first := make([]*wire.Client, 2)
	for i := range first {
		cl, err := wire.Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		first[i] = cl
		if err := cl.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	// A third connection parks: its ping cannot complete while both
	// slots are held.
	third, err := wire.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	pinged := make(chan error, 1)
	go func() { pinged <- third.Ping() }()
	select {
	case err := <-pinged:
		t.Fatalf("third connection served with a full pool: %v", err)
	case <-time.After(200 * time.Millisecond):
	}
	// Free a slot; the parked connection gets served.
	first[0].Close()
	select {
	case err := <-pinged:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked connection never admitted after a slot freed")
	}
	first[1].Close()
}

// TestE2EMetricsEndpoint: the /metrics handler serves the sampler's
// cache — per-stripe and per-class deadline counters included — without
// touching the patient snapshot path.
func TestE2EMetricsEndpoint(t *testing.T) {
	s := startServer(t, server.Config{Stripes: 2, MetricsAddr: "127.0.0.1:0"})
	defer s.Drain()
	cl := dial(t, s)
	for k := uint64(0); k < 32; k++ {
		if _, err := cl.Put(k, k, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cl.Get(1, time.Now().Add(-time.Second)); !errors.Is(err, wire.ErrDeadline) {
		t.Fatalf("want a deadline miss on the books: %v", err)
	}
	s.Sample() // deterministic: don't wait out the sampler cadence

	resp, err := http.Get("http://" + s.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"shardd_ops_total",
		"shardd_connections_accepted_total 1",
		"shardd_deadline_misses_total 1",
		fmt.Sprintf("shardd_len %d", 32),
		"shardd_stripe_deadline_attempts_total{stripe=\"0\"}",
		"shardd_stripe_deadline_misses_total{stripe=",
		"shardd_class_deadline_misses_total{class=\"0\"} 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
