package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"time"

	"repro/shard"
	"repro/wire"
)

const (
	connReadBuf  = 64 << 10
	connWriteBuf = 64 << 10
)

// serveConn is the per-connection pipelining loop: read one frame,
// serve it, append the response to a buffered writer, and flush only
// when the readable buffer is empty — a client that pipelines k
// requests gets k responses in one write, in request order.
//
// Deadline propagation happens here: the frame's remaining-budget field
// is converted to an absolute context deadline measured at frame
// receipt, so time a request spends queued inside the server burns the
// same budget time queued at a stripe lock does. The loop owns the time
// arithmetic and the admin verbs; the data-plane dispatch lives in
// handleOp, which is lockcheck-annotated as critical-section-grade
// code.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, connReadBuf)
	bw := bufio.NewWriterSize(conn, connWriteBuf)
	defer bw.Flush() // drain: responses already built always reach the socket

	var hdr [wire.ReqHeaderSize]byte
	payload := make([]byte, 0, 4096)
	resp := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // EOF, peer reset, or the drain read-deadline
		}
		h, err := wire.ParseReqHeader(hdr[:])
		if err != nil {
			// Malformed framing: answer, flush, and close — the byte
			// stream cannot be trusted to frame anything after this.
			s.badFrames.Add(1)
			resp = wire.AppendErrorResp(resp[:0], h.Op, badFrameStatus(err), err.Error())
			bw.Write(resp) //nolint:errcheck
			return
		}
		if cap(payload) < int(h.Len) {
			payload = make([]byte, h.Len)
		}
		p := payload[:h.Len]
		if _, err := io.ReadFull(br, p); err != nil {
			return
		}
		s.ops.Add(1)

		resp = resp[:0]
		switch h.Op {
		case wire.OpGet, wire.OpPut, wire.OpDel, wire.OpScan:
			if int(h.Class) >= shard.NumClasses {
				resp = wire.AppendErrorResp(resp, h.Op, wire.StatusBadClass, "class out of range")
				break
			}
			ctx := s.classCtx[h.Class]
			var cancel context.CancelFunc
			switch {
			case h.DeadlineMicros == wire.ExpiredBudget:
				// The client's budget was gone before the frame was
				// written: expire the context at construction (a deadline
				// in the past cancels synchronously) instead of arming a
				// timer the uncontended fast path could outrun. The map
				// still counts the attempt and the miss; the stripe lock
				// still records the Cancel.
				ctx, cancel = context.WithDeadline(ctx, time.Now().Add(-time.Microsecond))
			case h.DeadlineMicros > 0:
				ctx, cancel = context.WithDeadline(ctx,
					time.Now().Add(time.Duration(h.DeadlineMicros)*time.Microsecond))
			}
			resp = s.handleOp(ctx, h.Op, p, resp)
			if cancel != nil {
				cancel()
			}
		case wire.OpPing:
			resp = wire.AppendEmptyResp(resp, wire.OpPing)
		case wire.OpInfo:
			resp = wire.AppendTextResp(resp, wire.OpInfo, s.info())
		case wire.OpFault:
			resp = s.handleFault(p, resp)
		default:
			resp = wire.AppendErrorResp(resp, h.Op, wire.StatusUnknownOp, "unknown opcode")
		}

		if _, err := bw.Write(resp); err != nil {
			return
		}
		// Readable-buffer-empty flush: the client has nothing else in
		// flight that we know of, so ship the batch. While the reader
		// still holds frames, keep batching.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handleOp dispatches one data-plane frame against the map and appends
// the response. It runs once per point op on every served connection —
// the server's hot path — so it is held to critical-section discipline:
// no clocks, no formatting, no channels, no goroutines. The caller owns
// the deadline arithmetic and the admin verbs.
//
//lockcheck:cs
func (s *Server) handleOp(ctx context.Context, op wire.Op, p, resp []byte) []byte {
	switch op {
	case wire.OpGet:
		key, err := wire.ParseKey(p)
		if err != nil {
			return wire.AppendErrorResp(resp, op, wire.StatusBadFrame, err.Error())
		}
		val, ok, err := s.m.GetContext(ctx, key)
		if err != nil {
			return wire.AppendErrorResp(resp, op, errStatus(err), err.Error())
		}
		return wire.AppendGetResp(resp, ok, val)
	case wire.OpPut:
		key, val, err := wire.ParseKeyVal(p)
		if err != nil {
			return wire.AppendErrorResp(resp, op, wire.StatusBadFrame, err.Error())
		}
		fresh, err := s.m.PutContext(ctx, key, val)
		if err != nil {
			return wire.AppendErrorResp(resp, op, errStatus(err), err.Error())
		}
		return wire.AppendPutResp(resp, fresh)
	case wire.OpDel:
		key, err := wire.ParseKey(p)
		if err != nil {
			return wire.AppendErrorResp(resp, op, wire.StatusBadFrame, err.Error())
		}
		present, err := s.m.DeleteContext(ctx, key)
		if err != nil {
			return wire.AppendErrorResp(resp, op, errStatus(err), err.Error())
		}
		return wire.AppendDelResp(resp, present)
	case wire.OpScan:
		lo, hi, max, err := wire.ParseScan(p)
		if err != nil {
			return wire.AppendErrorResp(resp, op, wire.StatusBadFrame, err.Error())
		}
		out, start := wire.BeginScanResp(resp)
		n := uint32(0)
		err = s.m.ScanContext(ctx, lo, hi, func(k, v uint64) bool {
			out = wire.AppendScanPair(out, k, v)
			n++
			return n < max
		})
		if err != nil {
			// Partial pairs are abandoned with the truncation: the reply
			// is the error, not a half-scan posing as a result.
			return wire.AppendErrorResp(resp[:start], op, errStatus(err), err.Error())
		}
		return wire.EndScanResp(out, start)
	}
	return wire.AppendErrorResp(resp, op, wire.StatusUnknownOp, "unknown opcode")
}

// handleFault serves the FAULT admin verb (arm/disarm/stats).
func (s *Server) handleFault(p, resp []byte) []byte {
	sub, spec, err := wire.ParseFault(p)
	if err != nil {
		return wire.AppendErrorResp(resp, wire.OpFault, wire.StatusBadFrame, err.Error())
	}
	switch sub {
	case wire.FaultArm:
		if err := s.armFault(string(spec)); err != nil {
			return wire.AppendErrorResp(resp, wire.OpFault, wire.StatusBadFault, err.Error())
		}
		return wire.AppendEmptyResp(resp, wire.OpFault)
	case wire.FaultDisarm:
		s.disarmFault()
		return wire.AppendEmptyResp(resp, wire.OpFault)
	default: // wire.FaultStats — ParseFault admits nothing else
		return wire.AppendTextResp(resp, wire.OpFault, s.faultStats())
	}
}

// errStatus maps a map-layer error to its wire status.
//
//lockcheck:cs
func errStatus(err error) wire.Status {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return wire.StatusDeadline
	case errors.Is(err, shard.ErrUnordered):
		return wire.StatusUnordered
	}
	return wire.StatusInternal
}

// badFrameStatus distinguishes the oversized-payload reject from the
// generic malformed-header reject.
func badFrameStatus(err error) wire.Status {
	if errors.Is(err, wire.ErrPayloadSize) {
		return wire.StatusTooLarge
	}
	return wire.StatusBadFrame
}
