// Package server implements shardd's serving core: it binds a
// shard.Map behind the wire protocol, carries each request's class and
// deadline from the socket to the stripe lock, and exposes the map's
// snapshot/delta/chaos counters on a text-exposition /metrics endpoint.
// cmd/shardd is a thin flag-and-signal wrapper; the package exists so
// the race end-to-end tests and examples/shardsvc can run a real server
// in-process on a loopback listener.
//
// Connection handling is a benched dimension. Both models serve each
// connection on its own goroutine with a pipelining read loop
// (responses in request order, batched through a buffered writer that
// flushes when the readable buffer drains):
//
//   - "goroutine": every accepted connection is served immediately —
//     the unbounded-admission baseline, one goroutine per connection no
//     matter how many arrive.
//   - "pool": accepted connections must acquire a slot from a bounded
//     LIFO semaphore (the repo's Malthusian semaphore) before the read
//     loop starts. Excess connections wait in the semaphore — admission
//     culling applied one layer up, at the connection grain instead of
//     the stripe grain.
//
// Graceful drain (SIGTERM in cmd/shardd, Drain here) closes the
// listeners, lets every in-flight and already-buffered request finish
// within a grace window, flushes each connection's write buffer, and
// only then stops the controller — no response a client was owed is
// dropped.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/fault"
	"repro/policy"
	"repro/semaphore"
	"repro/shard"
	"repro/wire"
)

// Conn models.
const (
	// ConnGoroutine serves every accepted connection immediately.
	ConnGoroutine = "goroutine"
	// ConnPool gates the serve loop behind a bounded semaphore.
	ConnPool = "pool"
)

// Config configures a Server. Zero values pick the shard.Map defaults,
// the goroutine conn model, and no policy controller.
type Config struct {
	// Addr is the wire listen address ("127.0.0.1:0" for an ephemeral
	// test port). Empty means ":7070".
	Addr string
	// MetricsAddr is the /metrics HTTP listen address. Empty disables
	// the endpoint.
	MetricsAddr string

	// Stripes, LockSpec, BackendSpec, Seed, HistoryCap, ReadPath
	// configure the served shard.Map (see shard.Config). ReadPath
	// "optimistic" serves validated Gets without ever taking a stripe
	// lock; empty keeps the locked default.
	Stripes     int
	LockSpec    string
	BackendSpec string
	Seed        uint64
	HistoryCap  int
	ReadPath    string

	// Policy names an adaptation policy (see policy.New); empty runs no
	// controller. AdaptInterval is the controller cadence (nonpositive
	// means shard.DefaultControllerInterval).
	Policy        string
	AdaptInterval time.Duration

	// ConnModel is ConnGoroutine (default) or ConnPool; PoolSize bounds
	// concurrently served connections under ConnPool (default 64).
	ConnModel string
	PoolSize  int

	// DrainGrace bounds how long Drain waits for in-flight requests
	// (default 2s).
	DrainGrace time.Duration

	// MetricsInterval is the /metrics sampler cadence (default 1s). The
	// handler serves the sampler's cache; it never snapshots inline.
	MetricsInterval time.Duration
}

// Server serves one shard.Map over the wire protocol.
type Server struct {
	cfg  Config
	m    *shard.Map
	ln   net.Listener
	mln  net.Listener
	hsrv *http.Server
	ctrl *shard.Controller
	// pool is the bounded-concurrency admission semaphore. A served
	// connection holds a slot for its whole serve loop, including every
	// stripe acquisition inside it — the intended nesting:
	//
	//lockcheck:lockorder server.Server.pool<shard.descriptor.mu
	pool *semaphore.Semaphore

	// acceptCtx ends when Drain begins: the pool stops admitting and
	// the accept loop stops accepting. Op contexts do NOT derive from
	// it — in-flight requests drain, they are not cancelled.
	acceptCtx    context.Context
	acceptCancel context.CancelFunc

	mu sync.Mutex
	//lockcheck:guardedby mu
	conns map[net.Conn]struct{}
	//lockcheck:guardedby mu
	draining bool

	wg  sync.WaitGroup // accept loop + per-connection serve loops
	mwg sync.WaitGroup // metrics sampler + http server

	// classCtx caches one context per request class so the per-request
	// path does not allocate a WithClass context for every frame; a
	// deadlined request derives its deadline context from its class's
	// entry.
	classCtx [shard.NumClasses]context.Context

	// faultMu orders fault arm/disarm verbs; faultSet is the currently
	// installed set (nil until the first arm).
	faultMu sync.Mutex
	//lockcheck:guardedby faultMu
	faultSet *fault.Set

	// metricsCache is the sampler-maintained snapshot+delta the
	// /metrics handler renders (nil until the first sample).
	metricsCache atomic.Pointer[metricsSample]

	// Server-level counters, exposed on /metrics.
	accepted    atomic.Uint64 // connections accepted
	active      atomic.Int64  // connections currently served
	poolWaiting atomic.Int64  // connections parked waiting for a pool slot
	poolCulled  atomic.Uint64 // connections dropped waiting (drain or conn close)
	ops         atomic.Uint64 // frames served (all opcodes)
	badFrames   atomic.Uint64 // connections dropped for malformed framing
}

// New builds a Server and its map; nothing listens yet — call Start.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = ":7070"
	}
	switch cfg.ConnModel {
	case "":
		cfg.ConnModel = ConnGoroutine
	case ConnGoroutine, ConnPool:
	default:
		return nil, fmt.Errorf("server: unknown conn model %q (want %s or %s)", cfg.ConnModel, ConnGoroutine, ConnPool)
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 64
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 2 * time.Second
	}
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = time.Second
	}
	if cfg.Policy != "" {
		if _, err := policy.New(cfg.Policy); err != nil {
			return nil, fmt.Errorf("server: -policy: %w", err)
		}
	}
	m, err := shard.New(shard.Config{
		Stripes:     cfg.Stripes,
		LockSpec:    cfg.LockSpec,
		BackendSpec: cfg.BackendSpec,
		Seed:        cfg.Seed,
		HistoryCap:  cfg.HistoryCap,
		ReadPath:    cfg.ReadPath,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		m:     m,
		conns: make(map[net.Conn]struct{}),
	}
	s.acceptCtx, s.acceptCancel = context.WithCancel(context.Background())
	for c := range s.classCtx {
		s.classCtx[c] = shard.WithClass(context.Background(), c)
	}
	if cfg.ConnModel == ConnPool {
		// The Malthusian shape on purpose: mostly-LIFO admission keeps a
		// small hot set of connections running while the surplus parks —
		// the same culling story the stripe locks tell, one layer up.
		s.pool = semaphore.New(cfg.PoolSize, semaphore.MostlyLIFO, cfg.Seed)
	}
	return s, nil
}

// Map returns the served map (tests seed and assert through it).
func (s *Server) Map() *shard.Map { return s.m }

// Start binds the listeners, starts the accept loop, the policy
// controller (if configured), and the metrics sampler/endpoint (if
// configured). It returns once the listeners are bound, so Addr is
// valid immediately after.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.MetricsAddr != "" {
		mln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.mln = mln
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", s.handleMetrics)
		s.hsrv = &http.Server{Handler: mux}
		s.mwg.Add(2)
		go func() {
			defer s.mwg.Done()
			s.hsrv.Serve(mln) //nolint:errcheck // ErrServerClosed on Drain
		}()
		go s.sampleLoop()
	}
	if s.cfg.Policy != "" {
		s.ctrl = shard.StartController(context.Background(), s.m, policy.MustNew(s.cfg.Policy), s.cfg.AdaptInterval)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound wire address (valid after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the bound /metrics address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.mln == nil {
		return ""
	}
	return s.mln.Addr().String()
}

// Controller returns the running policy controller (nil without
// -policy).
func (s *Server) Controller() *shard.Controller { return s.ctrl }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Drain
		}
		s.accepted.Add(1)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true) //nolint:errcheck
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go s.serveEntry(conn)
	}
}

// serveEntry applies the conn model, then runs the serve loop.
func (s *Server) serveEntry(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()
	if s.pool != nil {
		s.poolWaiting.Add(1)
		err := s.pool.AcquireContext(s.acceptCtx)
		s.poolWaiting.Add(-1)
		if err != nil {
			// Drain began while this connection was parked: it is culled,
			// never served. Its socket closes without a response — the
			// same answer an over-capacity Malthusian lock gives.
			s.poolCulled.Add(1)
			return
		}
		defer s.pool.Release()
	}
	s.active.Add(1)
	defer s.active.Add(-1)
	s.serveConn(conn)
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Drain shuts the server down gracefully: stop accepting, give every
// served connection DrainGrace to finish the frames it has already
// received (responses are flushed, nothing owed is dropped), then stop
// the controller and metrics endpoint. Safe to call once.
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already draining")
	}
	s.draining = true
	deadline := time.Now().Add(s.cfg.DrainGrace)
	for conn := range s.conns {
		// The serve loop's next blocking read fails at the deadline; any
		// frame that arrives (or was buffered) before then is served.
		conn.SetReadDeadline(deadline) //nolint:errcheck
	}
	s.mu.Unlock()

	s.ln.Close()
	s.acceptCancel() // release pool waiters → culled, and stop admission
	s.wg.Wait()      // every serve loop flushed and exited

	if s.ctrl != nil {
		s.ctrl.Stop()
	}
	if s.hsrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.hsrv.Shutdown(ctx) //nolint:errcheck
		s.mwg.Wait()
	}
	return nil
}

// Info renders the "key=value" lines the INFO verb returns. Specs are
// live values: a controller swap shows up here.
func (s *Server) info() []byte {
	// The timeout bounds stripe acquisition inside SnapshotLite, so an
	// INFO verb is never held hostage by a collapsed stripe.
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	snap, err := s.m.SnapshotLite(ctx)
	var b strings.Builder
	fmt.Fprintf(&b, "server=shardd\nwire_version=%d\n", wire.Version)
	fmt.Fprintf(&b, "conn_model=%s\n", s.cfg.ConnModel)
	fmt.Fprintf(&b, "stripes=%d\n", s.m.Stripes())
	fmt.Fprintf(&b, "ordered=%t\n", s.m.Ordered())
	fmt.Fprintf(&b, "policy=%s\n", s.cfg.Policy)
	fmt.Fprintf(&b, "read_path=%s\n", s.m.ReadPath())
	if err == nil {
		// One representative stripe: the specs are per-stripe live state,
		// and stripe 0's is what the cell reports.
		if len(snap.Stripes) > 0 {
			fmt.Fprintf(&b, "lock=%s\nbackend=%s\n", snap.Stripes[0].LockSpec, snap.Stripes[0].BackendSpec)
		}
		fmt.Fprintf(&b, "swaps=%d\n", snap.Swaps)
		// Cumulative optimistic outcomes (and the lock-acquire total they
		// are read against): a load generator deltas these across its run
		// to report hit and fallback rates without scraping /metrics.
		fmt.Fprintf(&b, "opt_hits=%d\nopt_retries=%d\nopt_fallbacks=%d\n",
			snap.OptimisticHits, snap.OptimisticRetries, snap.OptimisticFallbacks)
		fmt.Fprintf(&b, "lock_acquires=%d\n", snap.Lock.Acquires)
	}
	if s.ctrl != nil {
		fmt.Fprintf(&b, "ctrl_swaps=%d\nctrl_rejected=%d\n", s.ctrl.Swaps(), s.ctrl.Rejected())
	}
	return []byte(b.String())
}

// armFault installs and arms a fault set from spec, replacing (and
// disarming) any previous set.
func (s *Server) armFault(spec string) error {
	set, err := fault.New(spec)
	if err != nil {
		return err
	}
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.faultSet != nil {
		s.faultSet.Disarm()
	}
	s.faultSet = set
	s.m.SetInjector(set)
	set.Arm()
	return nil
}

// disarmFault stops all injection (no-op when nothing is armed).
func (s *Server) disarmFault() {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.faultSet != nil {
		s.faultSet.Disarm()
	}
}

// faultStats renders the armed set's evidence counters.
func (s *Server) faultStats() []byte {
	s.faultMu.Lock()
	set := s.faultSet
	s.faultMu.Unlock()
	var b strings.Builder
	if set == nil {
		b.WriteString("armed=false\n")
		return []byte(b.String())
	}
	st := set.Stats()
	fmt.Fprintf(&b, "armed=%t\nspec=%s\n", set.Active(), set)
	fmt.Fprintf(&b, "stalls=%d\nstall_ms=%d\nreroutes=%d\nsurge_peak=%d\n",
		st.Stalls, st.StallTime.Milliseconds(), st.Reroutes, st.SurgePeak)
	return []byte(b.String())
}
