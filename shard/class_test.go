package shard

import (
	"context"
	"testing"
	"time"
)

// TestClassAccounting pins the per-class deadline counters: budgeted
// operations land under their context's class, unclassified traffic
// lands in class 0, and the pooled totals are the class sums — the
// contract that keeps pre-class callers (and the slo policy) unchanged.
func TestClassAccounting(t *testing.T) {
	m := MustNew(Config{Stripes: 1, LockSpec: "tas"})
	m.Put(1, 1)

	issue := func(ctx context.Context, n int) {
		for i := 0; i < n; i++ {
			if _, _, err := m.GetContext(ctx, 1); err != nil {
				t.Fatalf("GetContext: %v", err)
			}
		}
	}

	// Plain (uncancellable) context ops are not budgeted at all.
	issue(context.Background(), 5)
	// Budgeted, no class: class 0.
	ctx0, cancel0 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel0()
	issue(ctx0, 3)
	// Budgeted, class 2.
	ctx2, cancel2 := context.WithTimeout(WithClass(context.Background(), 2), time.Minute)
	defer cancel2()
	issue(ctx2, 4)
	// Out-of-range classes clamp to 0.
	ctxHi, cancelHi := context.WithTimeout(WithClass(context.Background(), NumClasses+7), time.Minute)
	defer cancelHi()
	issue(ctxHi, 2)

	snap := m.Snapshot()
	s := snap.Stripes[0]
	wantA := [NumClasses]uint64{0: 5, 2: 4}
	if s.ClassDeadlineAttempts != wantA {
		t.Fatalf("ClassDeadlineAttempts = %v, want %v", s.ClassDeadlineAttempts, wantA)
	}
	if s.DeadlineAttempts != 9 || snap.DeadlineAttempts != 9 {
		t.Fatalf("pooled attempts = %d/%d, want 9/9", s.DeadlineAttempts, snap.DeadlineAttempts)
	}
	if s.DeadlineMisses != 0 || s.ClassDeadlineMisses != ([NumClasses]uint64{}) {
		t.Fatalf("unexpected misses: %d %v", s.DeadlineMisses, s.ClassDeadlineMisses)
	}
}

// TestClassMisses drives an already-expired context through each class
// and checks the miss lands in the right bucket, with exactly one lock
// Cancels event per miss (the wire layer's reconciliation invariant).
func TestClassMisses(t *testing.T) {
	m := MustNew(Config{Stripes: 1, LockSpec: "mcs-stp"})
	m.Put(1, 1)

	missed := 0
	for cls := 0; cls < NumClasses; cls++ {
		ctx, cancel := context.WithCancel(WithClass(context.Background(), cls))
		cancel() // expired before the stripe is reached
		for i := 0; i <= cls; i++ {
			if _, _, err := m.GetContext(ctx, 1); err == nil {
				t.Fatalf("class %d: expired context served", cls)
			}
			missed++
		}
	}

	snap := m.Snapshot()
	s := snap.Stripes[0]
	for cls := 0; cls < NumClasses; cls++ {
		want := uint64(cls + 1)
		if s.ClassDeadlineAttempts[cls] != want || s.ClassDeadlineMisses[cls] != want {
			t.Fatalf("class %d: attempts/misses = %d/%d, want %d/%d",
				cls, s.ClassDeadlineAttempts[cls], s.ClassDeadlineMisses[cls], want, want)
		}
	}
	if snap.DeadlineMisses != uint64(missed) {
		t.Fatalf("pooled misses = %d, want %d", snap.DeadlineMisses, missed)
	}
	if snap.Lock.Cancels != uint64(missed) {
		t.Fatalf("Cancels = %d, want exactly one per miss (%d)", snap.Lock.Cancels, missed)
	}
}

// TestClassDelta pins the per-class saturating subtraction in
// Snapshot.Sub.
func TestClassDelta(t *testing.T) {
	m := MustNew(Config{Stripes: 2, LockSpec: "tas"})
	m.Put(1, 1)
	ctx1, cancel1 := context.WithTimeout(WithClass(context.Background(), 1), time.Minute)
	defer cancel1()
	if _, _, err := m.GetContext(ctx1, 1); err != nil {
		t.Fatal(err)
	}
	prev := m.Snapshot()
	for i := 0; i < 3; i++ {
		if _, _, err := m.GetContext(ctx1, 1); err != nil {
			t.Fatal(err)
		}
	}
	d := m.Snapshot().Sub(prev)
	if d.ClassDeadlineAttempts[1] != 3 {
		t.Fatalf("delta class-1 attempts = %d, want 3", d.ClassDeadlineAttempts[1])
	}
	if d.DeadlineAttempts != 3 {
		t.Fatalf("delta pooled attempts = %d, want 3", d.DeadlineAttempts)
	}
	// Mispaired snapshots saturate instead of wrapping.
	zero := Snapshot{}
	wrapped := zero.Sub(m.Snapshot())
	if wrapped.ClassDeadlineAttempts[1] != 0 {
		t.Fatalf("saturating sub wrapped: %v", wrapped.ClassDeadlineAttempts)
	}
}
