package shard

import "repro/internal/core"

// StripeDelta is the per-interval change of one stripe between two
// snapshots: the derivative a controller or bench decides on, where the
// snapshots themselves are cumulative.
type StripeDelta struct {
	// Index is the stripe's position in the map.
	Index int
	// Len is the key-count change (can be negative: deletions).
	Len int
	// Admissions is how many identified admissions the interval recorded
	// (0 once a capped history stops recording).
	Admissions int
	// Scans is how many scan attempts the interval made (map-level, like
	// StripeSnapshot.Scans: every scan visits every stripe).
	Scans uint64
	// Swaps is how many times the stripe was reconfigured in the
	// interval.
	Swaps uint64
	// DeadlineAttempts and DeadlineMisses are the interval's deadline-
	// bounded arrivals and expiries — the burn-rate numerator and
	// denominator the slo policy windows over. The Class arrays break
	// the same interval down by request class (WithClass).
	DeadlineAttempts      uint64
	DeadlineMisses        uint64
	ClassDeadlineAttempts [NumClasses]uint64
	ClassDeadlineMisses   [NumClasses]uint64
	// OptimisticHits/Retries/Fallbacks are the interval's optimistic
	// read-path outcomes: with them and Lock.Acquires a bench can show
	// that validated Gets took zero lock acquires (hits ≈ Gets,
	// acquires ≈ writes) on a read-heavy stripe.
	OptimisticHits      uint64
	OptimisticRetries   uint64
	OptimisticFallbacks uint64
	// Lock is the field-wise difference of the lock counters — parks,
	// cancels, acquires per interval.
	Lock core.Snapshot
}

// SnapshotDelta is the change of the whole map between two snapshots.
type SnapshotDelta struct {
	Stripes []StripeDelta
	// Lock is the field-wise difference of the rolled-up lock counters.
	Lock core.Snapshot
	// Len is the total key-count change.
	Len int
	// Scans is the map-level scan-attempt change (not a per-stripe sum).
	Scans uint64
	// Swaps is the total reconfiguration change across stripes.
	Swaps uint64
	// DeadlineAttempts and DeadlineMisses are the interval's deadline
	// totals across stripes; the Class arrays are the same totals broken
	// down by request class.
	DeadlineAttempts      uint64
	DeadlineMisses        uint64
	ClassDeadlineAttempts [NumClasses]uint64
	ClassDeadlineMisses   [NumClasses]uint64
	// OptimisticHits/Retries/Fallbacks are the interval's optimistic
	// read-path totals across stripes.
	OptimisticHits      uint64
	OptimisticRetries   uint64
	OptimisticFallbacks uint64
}

// Sub returns the change from prev to s — per-stripe and rolled-up
// per-interval rates (acquires, parks, cancels, admissions, scans,
// swaps) without hand-rolled per-stripe loops. Counter fields subtract
// saturating at zero (core.Snapshot.Sub), so pairing snapshots from
// different maps by mistake cannot produce wrapped rates. prev should be
// the earlier snapshot of the same map; a zero prev yields s itself as
// the delta.
func (s Snapshot) Sub(prev Snapshot) SnapshotDelta {
	sub := core.SatSub
	d := SnapshotDelta{
		Stripes:          make([]StripeDelta, len(s.Stripes)),
		Lock:             s.Lock.Sub(prev.Lock),
		Len:              s.Len - prev.Len,
		Scans:            sub(s.Scans, prev.Scans),
		DeadlineAttempts: sub(s.DeadlineAttempts, prev.DeadlineAttempts),
		DeadlineMisses:   sub(s.DeadlineMisses, prev.DeadlineMisses),

		OptimisticHits:      sub(s.OptimisticHits, prev.OptimisticHits),
		OptimisticRetries:   sub(s.OptimisticRetries, prev.OptimisticRetries),
		OptimisticFallbacks: sub(s.OptimisticFallbacks, prev.OptimisticFallbacks),
	}
	for c := 0; c < NumClasses; c++ {
		d.ClassDeadlineAttempts[c] = sub(s.ClassDeadlineAttempts[c], prev.ClassDeadlineAttempts[c])
		d.ClassDeadlineMisses[c] = sub(s.ClassDeadlineMisses[c], prev.ClassDeadlineMisses[c])
	}
	for i, cur := range s.Stripes {
		// Tolerate a prev taken from a differently-sized map (fewer
		// stripes than s): missing stripes subtract a zero baseline, so
		// the delta degrades to the cumulative value instead of panicking
		// mid-interval.
		var p StripeSnapshot
		if i < len(prev.Stripes) {
			p = prev.Stripes[i]
		}
		sd := StripeDelta{
			Index:            cur.Index,
			Len:              cur.Len - p.Len,
			Admissions:       cur.Fairness.Admissions - p.Fairness.Admissions,
			Scans:            sub(cur.Scans, p.Scans),
			Swaps:            sub(cur.Swaps, p.Swaps),
			DeadlineAttempts: sub(cur.DeadlineAttempts, p.DeadlineAttempts),
			DeadlineMisses:   sub(cur.DeadlineMisses, p.DeadlineMisses),

			OptimisticHits:      sub(cur.OptimisticHits, p.OptimisticHits),
			OptimisticRetries:   sub(cur.OptimisticRetries, p.OptimisticRetries),
			OptimisticFallbacks: sub(cur.OptimisticFallbacks, p.OptimisticFallbacks),

			Lock: cur.Lock.Sub(p.Lock),
		}
		for c := 0; c < NumClasses; c++ {
			sd.ClassDeadlineAttempts[c] = sub(cur.ClassDeadlineAttempts[c], p.ClassDeadlineAttempts[c])
			sd.ClassDeadlineMisses[c] = sub(cur.ClassDeadlineMisses[c], p.ClassDeadlineMisses[c])
		}
		d.Stripes[i] = sd
		d.Swaps += sd.Swaps
	}
	return d
}
