package shard

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/store"
)

func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func TestConfigDefaultsAndRounding(t *testing.T) {
	m := MustNew(Config{})
	if m.Stripes() != DefaultStripes {
		t.Fatalf("default Stripes=%d want %d", m.Stripes(), DefaultStripes)
	}
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
	} {
		m := MustNew(Config{Stripes: tc.in})
		if m.Stripes() != tc.want {
			t.Fatalf("Stripes:%d rounded to %d want %d", tc.in, m.Stripes(), tc.want)
		}
		for _, key := range []uint64{0, 1, 42, 1 << 63, ^uint64(0)} {
			if idx := m.StripeFor(key); idx < 0 || idx >= m.Stripes() {
				t.Fatalf("StripeFor(%d)=%d out of [0,%d)", key, idx, m.Stripes())
			}
		}
	}
}

func TestBadSpec(t *testing.T) {
	if _, err := New(Config{LockSpec: "no-such-lock"}); err == nil {
		t.Fatal("New with unknown lock spec succeeded")
	}
	if _, err := New(Config{LockSpec: "mcscr-stp?bogus=1"}); err == nil {
		t.Fatal("New with unknown spec parameter succeeded")
	}
}

func TestBasicOps(t *testing.T) {
	m := MustNew(Config{Stripes: 8, LockSpec: "tas", Capacity: 1000})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if !m.Put(i, i*10) {
			t.Fatalf("Put(%d) reported existing key", i)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len=%d want %d", m.Len(), n)
	}
	if m.Put(7, 71) {
		t.Fatal("update reported new key")
	}
	for i := uint64(0); i < n; i++ {
		want := i * 10
		if i == 7 {
			want = 71
		}
		if v, ok := m.Get(i); !ok || v != want {
			t.Fatalf("Get(%d)=%d,%v want %d,true", i, v, ok, want)
		}
	}
	if _, ok := m.Get(n + 1); ok {
		t.Fatal("Get found a missing key")
	}
	seen := 0
	m.Range(func(k, v uint64) bool { seen++; return true })
	if seen != n {
		t.Fatalf("Range visited %d pairs want %d", seen, n)
	}
	for i := uint64(0); i < n; i += 2 {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d) missed a present key", i)
		}
	}
	if m.Delete(0) {
		t.Fatal("Delete of a removed key reported presence")
	}
	if m.Len() != n/2 {
		t.Fatalf("Len=%d want %d", m.Len(), n/2)
	}
}

func TestRangeReentrant(t *testing.T) {
	// fn runs with no stripe lock held, so it may call back into the Map —
	// including into the stripe it was just handed pairs from.
	m := MustNew(Config{Stripes: 2, LockSpec: "tas"})
	for i := uint64(0); i < 64; i++ {
		m.Put(i, i)
	}
	visited := 0
	m.Range(func(k, v uint64) bool {
		visited++
		if _, ok := m.Get(k); !ok {
			t.Fatalf("reentrant Get(%d) missed", k)
		}
		return visited < 10 // early stop
	})
	if visited != 10 {
		t.Fatalf("Range visited %d pairs after early stop, want 10", visited)
	}
}

func TestContextOpsPlumbing(t *testing.T) {
	m := MustNew(Config{Stripes: 4, LockSpec: "mcscr-stp", HistoryCap: 100})
	ctx := WithClientID(context.Background(), 3)
	if fresh, err := m.PutContext(ctx, 1, 10); err != nil || !fresh {
		t.Fatalf("PutContext=%v,%v", fresh, err)
	}
	if v, ok, err := m.GetContext(ctx, 1); err != nil || !ok || v != 10 {
		t.Fatalf("GetContext=%d,%v,%v", v, ok, err)
	}
	if present, err := m.DeleteContext(ctx, 1); err != nil || !present {
		t.Fatalf("DeleteContext=%v,%v", present, err)
	}
	// Anonymous context ops leave no history; identified ones recorded 3.
	if _, err := m.PutContext(context.Background(), 2, 20); err != nil {
		t.Fatalf("anonymous PutContext: %v", err)
	}
	snap := m.Snapshot()
	admissions := 0
	for _, s := range snap.Stripes {
		admissions += s.Fairness.Admissions
	}
	if admissions != 3 {
		t.Fatalf("recorded %d admissions want 3", admissions)
	}
	if snap.Len != 1 {
		t.Fatalf("Snapshot.Len=%d want 1", snap.Len)
	}
	// A done context fails fast without touching the table — on the data
	// path and on the monitoring path alike.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := m.GetContext(done, 2); err != context.Canceled {
		t.Fatalf("GetContext(done)=%v want context.Canceled", err)
	}
	if _, err := m.SnapshotContext(done); err != context.Canceled {
		t.Fatalf("SnapshotContext(done)=%v want context.Canceled", err)
	}
	if _, err := m.LenContext(done); err != context.Canceled {
		t.Fatalf("LenContext(done)=%v want context.Canceled", err)
	}
	if err := m.RangeContext(done, func(_, _ uint64) bool { return true }); err != context.Canceled {
		t.Fatalf("RangeContext(done)=%v want context.Canceled", err)
	}
	if n, err := m.LenContext(context.Background()); err != nil || n != 1 {
		t.Fatalf("LenContext=%d,%v want 1,nil", n, err)
	}
	if s2, err := m.SnapshotContext(context.Background()); err != nil || s2.Len != 1 {
		t.Fatalf("SnapshotContext Len=%d,%v want 1,nil", s2.Len, err)
	}
}

func TestHistoryCap(t *testing.T) {
	m := MustNew(Config{Stripes: 1, LockSpec: "tas", HistoryCap: 10})
	ctx := WithClientID(context.Background(), 1)
	for i := uint64(0); i < 50; i++ {
		if _, err := m.PutContext(ctx, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Snapshot().Stripes[0].Fairness.Admissions; got != 10 {
		t.Fatalf("capped history recorded %d admissions want 10", got)
	}
}

// TestMonotonicReadsPerKey checks per-key linearizability: one writer per
// key writes strictly increasing values, so any reader's successive
// observations of that key must be non-decreasing.
func TestMonotonicReadsPerKey(t *testing.T) {
	for _, spec := range []string{"tas", "mcscr-stp", "mcs-stp"} {
		t.Run(spec, func(t *testing.T) {
			m := MustNew(Config{Stripes: 4, LockSpec: spec, Seed: 9})
			const keys, writes = 4, 2000
			var wg sync.WaitGroup
			var stop atomic.Bool
			for k := uint64(0); k < keys; k++ {
				wg.Add(1)
				go func(key uint64) {
					defer wg.Done()
					for v := uint64(1); v <= writes; v++ {
						m.Put(key, v)
					}
				}(k)
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					last := make([]uint64, keys)
					for !stop.Load() {
						for k := uint64(0); k < keys; k++ {
							v, ok := m.Get(k)
							if !ok {
								continue
							}
							if v < last[k] {
								t.Errorf("key %d went backwards: %d after %d", k, v, last[k])
								return
							}
							last[k] = v
						}
					}
				}()
			}
			// Writers finish, then readers are released.
			go func() {
				for k := uint64(0); k < keys; k++ {
					for v, _ := m.Get(k); v != writes; v, _ = m.Get(k) {
						runtime.Gosched()
					}
				}
				stop.Store(true)
			}()
			wg.Wait()
		})
	}
}

// TestConcurrentStress hammers every entry point at once under the race
// detector: the stripe tables are unsynchronized, so any hole in the
// stripe locking surfaces as a race report.
func TestConcurrentStress(t *testing.T) {
	m := MustNew(Config{Stripes: 8, LockSpec: "mcscr-stp", HistoryCap: 1 << 14})
	const goroutines, iters, keyspace = 8, 1500, 256
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			ctx := WithClientID(context.Background(), id)
			for i := 0; i < iters; i++ {
				key := rng.Uint64() % keyspace
				switch rng.Intn(10) {
				case 0:
					m.Delete(key)
				case 1:
					m.Range(func(_, _ uint64) bool { return rng.Intn(8) != 0 })
				case 2:
					m.Len()
				case 3:
					m.Snapshot()
				case 4, 5:
					if _, err := m.PutContext(ctx, key, rng.Uint64()); err != nil {
						t.Errorf("PutContext: %v", err)
					}
				default:
					if rng.Intn(2) == 0 {
						m.Get(key)
					} else if _, _, err := m.GetContext(ctx, key); err != nil {
						t.Errorf("GetContext: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.Lock.Cancels != 0 {
		t.Fatalf("uncancellable traffic counted %d Cancels", snap.Lock.Cancels)
	}
	if snap.Len != m.Len() {
		t.Fatalf("quiescent Snapshot.Len=%d but Len()=%d", snap.Len, m.Len())
	}
}

// TestDeadlineStormCancels reconciles the error returns seen by callers
// against the stripes' Cancels counters under a storm of expired and
// near-expired deadlines: the lock contract is exactly one Cancels per
// error return, and the shard layer must not add or lose any.
func TestDeadlineStormCancels(t *testing.T) {
	for _, spec := range []string{"mcs-stp", "mcscr-stp"} {
		t.Run(spec, func(t *testing.T) {
			// One stripe concentrates the contention so short deadlines
			// really expire in the queue.
			m := MustNew(Config{Stripes: 1, LockSpec: spec, HistoryCap: 1 << 16})
			const goroutines, iters = 8, 300
			var errs, succ atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(id)))
					base := WithClientID(context.Background(), id)
					for i := 0; i < iters; i++ {
						var ctx context.Context
						cancel := context.CancelFunc(func() {})
						switch rng.Intn(3) {
						case 0: // already expired: deterministic fail-fast cancel
							c, cfn := context.WithCancel(base)
							cfn()
							ctx, cancel = c, func() {}
						case 1: // tight: may expire while queued
							ctx, cancel = context.WithTimeout(base, time.Duration(rng.Intn(150))*time.Microsecond)
						default: // generous: normally admitted
							ctx, cancel = context.WithTimeout(base, time.Second)
						}
						key := rng.Uint64() % 64
						var err error
						if rng.Intn(2) == 0 {
							_, _, err = m.GetContext(ctx, key)
						} else {
							_, err = m.PutContext(ctx, key, uint64(i))
						}
						cancel()
						if err != nil {
							errs.Add(1)
						} else {
							succ.Add(1)
						}
					}
				}(g)
			}
			wg.Wait()
			snap := m.Snapshot()
			if got := snap.Lock.Cancels; got != uint64(errs.Load()) {
				t.Fatalf("Cancels=%d but callers saw %d errors", got, errs.Load())
			}
			if errs.Load()+succ.Load() != goroutines*iters {
				t.Fatalf("accounting hole: %d+%d != %d", errs.Load(), succ.Load(), goroutines*iters)
			}
			// Every successful identified admission is in the history.
			if got := snap.Stripes[0].Fairness.Admissions; got != int(succ.Load()) {
				t.Fatalf("history recorded %d admissions but %d ops succeeded", got, succ.Load())
			}
			if snap.Lock.Abandons > snap.Lock.Cancels {
				t.Fatalf("Abandons=%d > Cancels=%d", snap.Lock.Abandons, snap.Lock.Cancels)
			}
		})
	}
}

func TestBadBackendSpec(t *testing.T) {
	if _, err := New(Config{BackendSpec: "no-such-backend"}); err == nil {
		t.Fatal("New with unknown backend spec succeeded")
	}
	if _, err := New(Config{BackendSpec: "skiplist?bogus=1"}); err == nil {
		t.Fatal("New with unknown backend parameter succeeded")
	}
}

// TestBackendSweepBasicOps runs the basic operation battery over every
// registered backend: the Map contract must not depend on which table
// serves the stripes.
func TestBackendSweepBasicOps(t *testing.T) {
	for _, backend := range store.Names() {
		t.Run(backend, func(t *testing.T) {
			m := MustNew(Config{Stripes: 8, LockSpec: "tas", BackendSpec: backend, Capacity: 512, Seed: 3})
			const n = 512
			for i := uint64(0); i < n; i++ {
				if !m.Put(i, i*10) {
					t.Fatalf("Put(%d) reported existing key", i)
				}
			}
			if m.Len() != n {
				t.Fatalf("Len=%d want %d", m.Len(), n)
			}
			for i := uint64(0); i < n; i++ {
				if v, ok := m.Get(i); !ok || v != i*10 {
					t.Fatalf("Get(%d)=%d,%v", i, v, ok)
				}
			}
			seen := 0
			m.Range(func(k, v uint64) bool { seen++; return true })
			if seen != n {
				t.Fatalf("Range visited %d pairs want %d", seen, n)
			}
			for i := uint64(0); i < n; i += 2 {
				if !m.Delete(i) {
					t.Fatalf("Delete(%d) missed", i)
				}
			}
			if m.Len() != n/2 {
				t.Fatalf("Len=%d want %d", m.Len(), n/2)
			}
		})
	}
}

// TestScanUnordered pins the clean failure mode: the default hashmap
// backend cannot serve range queries, and says so without visiting
// anything.
func TestScanUnordered(t *testing.T) {
	m := MustNew(Config{Stripes: 4, LockSpec: "tas"}) // default backend: hashmap
	if m.Ordered() {
		t.Fatal("hashmap-backed map claims Ordered")
	}
	visited := false
	err := m.Scan(0, ^uint64(0), func(_, _ uint64) bool { visited = true; return true })
	if !errors.Is(err, ErrUnordered) {
		t.Fatalf("Scan on unordered backend: err=%v want ErrUnordered", err)
	}
	if visited {
		t.Fatal("Scan on unordered backend visited pairs")
	}
	if err := m.ScanContext(context.Background(), 0, 1, nil); !errors.Is(err, ErrUnordered) {
		t.Fatalf("ScanContext on unordered backend: err=%v", err)
	}
}

// TestScanOrdered checks cross-stripe merged scans against a model for
// both ordered backends: global ascending order, inclusive bounds, and
// early stop.
func TestScanOrdered(t *testing.T) {
	for _, backend := range []string{"skiplist", "rbtree"} {
		t.Run(backend, func(t *testing.T) {
			m := MustNew(Config{Stripes: 8, LockSpec: "tas", BackendSpec: backend, Seed: 5})
			if !m.Ordered() {
				t.Fatalf("%s-backed map does not claim Ordered", backend)
			}
			rng := rand.New(rand.NewSource(11))
			model := map[uint64]uint64{}
			for i := 0; i < 4000; i++ {
				k := rng.Uint64() >> uint(rng.Intn(64)) // all magnitudes
				model[k] = k * 3
				m.Put(k, k*3)
			}
			m.Put(0, 1)
			model[0] = 1
			m.Put(^uint64(0), 2)
			model[^uint64(0)] = 2

			keys := make([]uint64, 0, len(model))
			for k := range model {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

			check := func(lo, hi uint64) {
				var want []uint64
				for _, k := range keys {
					if lo <= k && k <= hi {
						want = append(want, k)
					}
				}
				var got []uint64
				err := m.Scan(lo, hi, func(k, v uint64) bool {
					if v != model[k] {
						t.Fatalf("Scan yielded %d=%d want %d", k, v, model[k])
					}
					got = append(got, k)
					return true
				})
				if err != nil {
					t.Fatalf("Scan[%d,%d]: %v", lo, hi, err)
				}
				if len(got) != len(want) {
					t.Fatalf("Scan[%d,%d] yielded %d keys want %d", lo, hi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("Scan[%d,%d] diverges at %d: got %d want %d", lo, hi, i, got[i], want[i])
					}
				}
			}
			check(0, ^uint64(0))
			for i := 0; i < 20; i++ {
				lo, hi := rng.Uint64(), rng.Uint64()
				if lo > hi {
					lo, hi = hi, lo
				}
				check(lo, hi)
			}
			// Early stop after 5 pairs, still in global order.
			var got []uint64
			if err := m.Scan(0, ^uint64(0), func(k, _ uint64) bool {
				got = append(got, k)
				return len(got) < 5
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 5 {
				t.Fatalf("early-stopped Scan yielded %d pairs", len(got))
			}
			for i := range got {
				if got[i] != keys[i] {
					t.Fatalf("early Scan diverges at %d: got %d want %d", i, got[i], keys[i])
				}
			}
			// ScanContext: done context fails fast; live context serves.
			done, cancel := context.WithCancel(context.Background())
			cancel()
			if err := m.ScanContext(done, 0, 1, func(_, _ uint64) bool { return true }); err != context.Canceled {
				t.Fatalf("ScanContext(done)=%v want context.Canceled", err)
			}
			n := 0
			if err := m.ScanContext(context.Background(), 0, ^uint64(0), func(_, _ uint64) bool { n++; return true }); err != nil || n != len(keys) {
				t.Fatalf("ScanContext yielded %d,%v want %d,nil", n, err, len(keys))
			}
		})
	}
}

// TestScanStress hammers ordered backends with concurrent writers,
// deleters, and scanners under the race detector. Each scanned slice
// must be strictly ascending (global order), and keys outside the
// mutated band — written once before the storm and never touched again —
// must all appear in every full scan: per-stripe consistency cannot lose
// an untouched key.
func TestScanStress(t *testing.T) {
	for _, backend := range []string{"skiplist", "rbtree"} {
		t.Run(backend, func(t *testing.T) {
			m := MustNew(Config{Stripes: 8, LockSpec: "mcscr-stp", BackendSpec: backend, Seed: 17})
			const stableKeys, hotKeys = 256, 64
			// Stable band: keys [1e6, 1e6+stableKeys) written once.
			for i := uint64(0); i < stableKeys; i++ {
				m.Put(1_000_000+i, i)
			}
			var wg sync.WaitGroup
			var stop atomic.Bool
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(id)))
					for !stop.Load() {
						k := uint64(rng.Intn(hotKeys))
						if rng.Intn(4) == 0 {
							m.Delete(k)
						} else {
							m.Put(k, rng.Uint64())
						}
					}
				}(w)
			}
			for s := 0; s < 3; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for iter := 0; iter < 60; iter++ {
						var last uint64
						first := true
						stable := 0
						err := m.Scan(0, ^uint64(0), func(k, _ uint64) bool {
							if !first && k <= last {
								t.Errorf("scan not ascending: %d after %d", k, last)
								return false
							}
							last, first = k, false
							if k >= 1_000_000 && k < 1_000_000+stableKeys {
								stable++
							}
							return true
						})
						if err != nil {
							t.Errorf("Scan: %v", err)
							return
						}
						if stable != stableKeys {
							t.Errorf("scan saw %d stable keys want %d", stable, stableKeys)
							return
						}
					}
				}()
			}
			time.Sleep(50 * time.Millisecond)
			stop.Store(true)
			wg.Wait()
		})
	}
}
