package shard

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/fault"
)

func TestReadPathConfig(t *testing.T) {
	if _, err := New(Config{ReadPath: "turbo"}); err == nil {
		t.Fatal("New accepted an unknown read path")
	}
	m := MustNew(Config{Stripes: 2})
	if got := m.ReadPath(); got != "locked" {
		t.Fatalf("default ReadPath() = %q, want locked", got)
	}
	m = MustNew(Config{Stripes: 2, ReadPath: "optimistic?retries=4"})
	if got := m.ReadPath(); got != "optimistic?retries=4" {
		t.Fatalf("ReadPath() = %q", got)
	}
}

// TestOptimisticGetAccounting is the acceptance shape: on a quiescent
// optimistic map, every Get is served lock-free — the hit counter
// carries the read volume exactly, and the only lock acquires in the
// interval are the writes and the snapshots' own stripe visits.
func TestOptimisticGetAccounting(t *testing.T) {
	const stripes = 4
	m := MustNew(Config{Stripes: stripes, LockSpec: "tas", ReadPath: "optimistic"})
	const keys = 1024
	for i := uint64(0); i < keys; i++ {
		m.Put(i, i*3)
	}
	base := m.Snapshot()

	const gets = 10000
	miss := 0
	for i := 0; i < gets; i++ {
		k := uint64(i) % (keys + 64) // some misses: absent keys validate too
		v, ok := m.Get(k)
		if k < keys && (!ok || v != k*3) {
			t.Fatalf("Get(%d) = %d, %v", k, v, ok)
		}
		if k >= keys {
			miss++
			if ok {
				t.Fatalf("Get(%d) found an absent key", k)
			}
		}
	}
	_ = miss

	delta := m.Snapshot().Sub(base)
	if delta.OptimisticHits != gets {
		t.Fatalf("optimistic hits = %d, want %d", delta.OptimisticHits, gets)
	}
	if delta.OptimisticFallbacks != 0 || delta.OptimisticRetries != 0 {
		t.Fatalf("quiescent map saw retries=%d fallbacks=%d", delta.OptimisticRetries, delta.OptimisticFallbacks)
	}
	// Zero stripe-lock acquires for the Gets: the interval's acquires
	// are exactly the closing snapshot's own per-stripe visits.
	if delta.Lock.Acquires != stripes {
		t.Fatalf("lock acquires = %d, want %d (snapshot only)", delta.Lock.Acquires, stripes)
	}

	// GetContext hits are budgeted (attempt counted, no miss) and never
	// take the lock either.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	base = m.Snapshot()
	for i := uint64(0); i < 100; i++ {
		if v, ok, err := m.GetContext(ctx, i); err != nil || !ok || v != i*3 {
			t.Fatalf("GetContext(%d) = %d, %v, %v", i, v, ok, err)
		}
	}
	delta = m.Snapshot().Sub(base)
	if delta.OptimisticHits != 100 || delta.Lock.Acquires != stripes {
		t.Fatalf("GetContext interval: hits=%d acquires=%d", delta.OptimisticHits, delta.Lock.Acquires)
	}
	if delta.DeadlineAttempts != 100 || delta.DeadlineMisses != 0 {
		t.Fatalf("GetContext interval: attempts=%d misses=%d", delta.DeadlineAttempts, delta.DeadlineMisses)
	}
}

// TestOptimisticDeclinedBackend: a backend without store.OptimisticReader
// keeps the locked path under an optimistic config — correct answers, no
// optimistic counters, not even fallbacks (declining is not failing).
func TestOptimisticDeclinedBackend(t *testing.T) {
	m := MustNew(Config{Stripes: 2, BackendSpec: "skiplist", ReadPath: "optimistic"})
	for i := uint64(0); i < 256; i++ {
		m.Put(i, i+1)
	}
	base := m.Snapshot()
	for i := uint64(0); i < 256; i++ {
		if v, ok := m.Get(i); !ok || v != i+1 {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	delta := m.Snapshot().Sub(base)
	if delta.OptimisticHits != 0 || delta.OptimisticRetries != 0 || delta.OptimisticFallbacks != 0 {
		t.Fatalf("declined backend counted optimistic traffic: %+v", delta)
	}
	if delta.Lock.Acquires < 256 {
		t.Fatalf("declined backend served %d locked Gets, want >= 256", delta.Lock.Acquires)
	}
}

// TestOptimisticFallbackUnderStall: an armed stall fault lengthens
// writer critical sections (the injector runs inside the write
// section), so concurrent optimistic readers see unstable stamps,
// exhaust their budget, and fall back to the lock — the designed
// degradation, visible in the fallback counter.
func TestOptimisticFallbackUnderStall(t *testing.T) {
	// The FIFO mcs-stp lock bounds each fallback Get's wait at one
	// writer critical section; an unfair spinlock could starve the
	// reader behind the stalling writer's immediate re-acquires.
	m := MustNew(Config{Stripes: 1, LockSpec: "mcs-stp", ReadPath: "optimistic?retries=1"})
	set := fault.MustNew("stall?p=1&hold=100us")
	m.SetInjector(set)
	defer m.SetInjector(nil)
	set.Arm()
	defer set.Disarm()

	m.Put(1, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				m.Put(i%128, i)
			}
		}
	}()

	// Poll the stripe counter directly — a Snapshot would itself queue
	// behind the stalling writer.
	fallbacks := &m.stripes[0].optFallbacks
	deadline := time.Now().Add(5 * time.Second)
	for fallbacks.Load() == 0 {
		if time.Now().After(deadline) {
			t.Error("no fallback observed under a p=1 stall within 5s")
			break
		}
		for i := 0; i < 10 && fallbacks.Load() == 0; i++ {
			m.Get(uint64(i % 128))
		}
	}
	close(stop)
	wg.Wait()
}

// TestOptimisticMonotonicStress is the -race differential for the
// optimistic read path: per-key monotonic counters written under the
// stripe locks while lock-free readers assert that validated reads
// never go backwards — across concurrent writers, live Reconfigure
// swaps (lock swaps, and backend swaps that bounce the stripe between
// an optimistic-capable hashmap and a declining skiplist), and an armed
// stall fault lengthening the write sections. Any torn read that
// escapes validation, any stale read through a swapped-away descriptor,
// or any unsynchronized slot access shows up as a monotonicity failure
// or a race report.
func TestOptimisticMonotonicStress(t *testing.T) {
	const (
		stripes = 2
		keys    = 64
		writers = 4
		readers = 4
	)
	m := MustNew(Config{Stripes: stripes, LockSpec: "mcs-stp", ReadPath: "optimistic?retries=2"})
	set := fault.MustNew("stall?p=0.05&hold=50us")
	m.SetInjector(set)
	defer m.SetInjector(nil)
	set.Arm()
	defer set.Disarm()

	for k := uint64(0); k < keys; k++ {
		m.Put(k, 0)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: each owns a disjoint key slice and publishes a strictly
	// increasing value per key.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var v uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v++
				for k := uint64(w); k < keys; k += writers {
					m.Put(k, v)
				}
			}
		}(w)
	}

	// Readers: per-key last-seen values must never decrease. Mix the
	// plain and context forms so both bypasses are exercised.
	ctx := context.Background()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			last := make([]uint64, keys)
			dctx, cancel := context.WithTimeout(ctx, time.Hour)
			defer cancel()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(keys))
				var v uint64
				var ok bool
				if rng.Intn(2) == 0 {
					v, ok = m.Get(k)
				} else {
					var err error
					v, ok, err = m.GetContext(dctx, k)
					if err != nil {
						continue
					}
				}
				if !ok {
					t.Errorf("key %d vanished (never deleted)", k)
					return
				}
				if v < last[k] {
					t.Errorf("non-monotonic read: key %d went %d -> %d", k, last[k], v)
					return
				}
				last[k] = v
			}
		}(int64(r))
	}

	// Reconfigurer: swap locks and bounce backends under fire. The
	// hashmap->skiplist swap disables the optimistic path on that
	// stripe (readers must fall through to the lock, not read the
	// migrated-away table); skiplist->hashmap re-enables it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		specs := []struct{ l, b string }{
			{"tas", ""},
			{"", "skiplist"},
			{"mcs-stp", ""},
			{"", "hashmap"},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp := specs[i%len(specs)]
			if err := m.Reconfigure(i%stripes, sp.l, sp.b); err != nil {
				t.Errorf("Reconfigure: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	snap := m.Snapshot()
	if snap.OptimisticHits == 0 {
		t.Fatal("stress run served zero optimistic hits")
	}
	// Grace periods complete once readers are gone: after a couple of
	// sampler heartbeats every retired descriptor must be collected.
	for i := 0; i < 4; i++ {
		if _, err := m.SnapshotLite(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.RetiredDescriptors(); n != 0 {
		t.Fatalf("%d retired descriptors still uncollected with no readers", n)
	}
	es := m.EpochStats()
	if es.Pinned != 0 || es.Pending != 0 {
		t.Fatalf("epoch did not drain: %+v", es)
	}
}

// TestOptimisticEpochGauge: a Reconfigure while a reader is pinned
// leaves the retired descriptor uncollected until the reader unpins —
// the observable half of the grace-period contract.
func TestOptimisticEpochGauge(t *testing.T) {
	m := MustNew(Config{Stripes: 1, ReadPath: "optimistic"})
	m.Put(1, 1)

	h := m.epoch.Pin()
	if err := m.Reconfigure(0, "tas", ""); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := m.SnapshotLite(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.RetiredDescriptors(); n != 1 {
		t.Fatalf("RetiredDescriptors = %d with a pinned reader, want 1", n)
	}
	h.Unpin()
	for i := 0; i < 4; i++ {
		if _, err := m.SnapshotLite(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.RetiredDescriptors(); n != 0 {
		t.Fatalf("RetiredDescriptors = %d after unpin, want 0", n)
	}
}

// TestOptimisticCounters sanity-checks the per-stripe counter plumbing
// through StripeSnapshot and the delta path under a known single-stripe
// workload.
func TestOptimisticCounterPlumbing(t *testing.T) {
	m := MustNew(Config{Stripes: 1, ReadPath: "optimistic"})
	m.Put(7, 70)
	base := m.Snapshot()
	for i := 0; i < 50; i++ {
		m.Get(7)
	}
	snap := m.Snapshot()
	if snap.Stripes[0].OptimisticHits != snap.OptimisticHits {
		t.Fatalf("stripe/rollup mismatch: %d vs %d", snap.Stripes[0].OptimisticHits, snap.OptimisticHits)
	}
	delta := snap.Sub(base)
	if delta.OptimisticHits != 50 || delta.Stripes[0].OptimisticHits != 50 {
		t.Fatalf("delta hits = %d / stripe %d, want 50", delta.OptimisticHits, delta.Stripes[0].OptimisticHits)
	}
}
