package shard

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestScanChunkedDifferential pins ScanChunked to Scan on a quiescent
// map: identical pairs, identical order, for chunk sizes from degenerate
// to larger-than-everything, across random bounds.
func TestScanChunkedDifferential(t *testing.T) {
	for _, backend := range []string{"skiplist", "rbtree"} {
		t.Run(backend, func(t *testing.T) {
			m := MustNew(Config{Stripes: 8, LockSpec: "tas", BackendSpec: backend, Seed: 5})
			rng := rand.New(rand.NewSource(23))
			for i := 0; i < 3000; i++ {
				k := rng.Uint64() >> uint(rng.Intn(64))
				m.Put(k, k*3)
			}
			m.Put(0, 1)
			m.Put(^uint64(0), 2)

			check := func(lo, hi uint64, chunk int) {
				var want, got []kv
				if err := m.Scan(lo, hi, func(k, v uint64) bool {
					want = append(want, kv{k, v})
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if err := m.ScanChunked(lo, hi, chunk, func(k, v uint64) bool {
					got = append(got, kv{k, v})
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("chunk=%d [%d,%d]: %d pairs want %d", chunk, lo, hi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("chunk=%d [%d,%d] diverges at %d: %v want %v", chunk, lo, hi, i, got[i], want[i])
					}
				}
			}
			for _, chunk := range []int{1, 3, 7, 64, 100000} {
				check(0, ^uint64(0), chunk)
				for i := 0; i < 5; i++ {
					lo, hi := rng.Uint64(), rng.Uint64()
					if lo > hi {
						lo, hi = hi, lo
					}
					check(lo, hi, chunk)
				}
			}

			// Early stop after 5 pairs, still in global order.
			var got []uint64
			if err := m.ScanChunked(0, ^uint64(0), 3, func(k, _ uint64) bool {
				got = append(got, k)
				return len(got) < 5
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 5 {
				t.Fatalf("early-stopped ScanChunked yielded %d pairs", len(got))
			}
			var first []uint64
			m.Scan(0, ^uint64(0), func(k, _ uint64) bool {
				first = append(first, k)
				return len(first) < 5
			})
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("early ScanChunked diverges at %d: %d want %d", i, got[i], first[i])
				}
			}
		})
	}
}

func TestScanChunkedErrors(t *testing.T) {
	m := MustNew(Config{Stripes: 2, LockSpec: "tas", BackendSpec: "skiplist"})
	if err := m.ScanChunked(0, 1, 0, func(_, _ uint64) bool { return true }); err == nil {
		t.Fatal("chunk 0 accepted")
	}
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.ScanChunkedContext(done, 0, 1, 4, func(_, _ uint64) bool { return true }); err != context.Canceled {
		t.Fatalf("ScanChunkedContext(done)=%v want context.Canceled", err)
	}
	um := MustNew(Config{Stripes: 2, LockSpec: "tas"}) // hashmap
	visited := false
	if err := um.ScanChunked(0, ^uint64(0), 4, func(_, _ uint64) bool { visited = true; return true }); !errors.Is(err, ErrUnordered) {
		t.Fatalf("ScanChunked on unordered backend: %v", err)
	}
	if visited {
		t.Fatal("ScanChunked on unordered backend visited pairs")
	}
}

// TestScanChunkedStress: concurrent writers on a hot band while chunked
// scanners sweep the domain. Yielded keys must be strictly ascending
// (chunk rounds emit disjoint ascending intervals), and the stable band
// — written once, never touched — must appear exactly once per sweep
// despite the weaker cross-chunk consistency.
func TestScanChunkedStress(t *testing.T) {
	m := MustNew(Config{Stripes: 8, LockSpec: "mcscr-stp", BackendSpec: "skiplist", Seed: 17})
	const stableKeys, hotKeys = 256, 64
	for i := uint64(0); i < stableKeys; i++ {
		m.Put(1_000_000+i, i)
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for !stop.Load() {
				k := uint64(rng.Intn(hotKeys))
				if rng.Intn(4) == 0 {
					m.Delete(k)
				} else {
					m.Put(k, rng.Uint64())
				}
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(chunk int) {
			defer wg.Done()
			for iter := 0; iter < 40; iter++ {
				var last uint64
				first := true
				stable := 0
				err := m.ScanChunked(0, ^uint64(0), chunk, func(k, _ uint64) bool {
					if !first && k <= last {
						t.Errorf("chunked scan not ascending: %d after %d", k, last)
						return false
					}
					last, first = k, false
					if k >= 1_000_000 && k < 1_000_000+stableKeys {
						stable++
					}
					return true
				})
				if err != nil {
					t.Errorf("ScanChunked: %v", err)
					return
				}
				if stable != stableKeys {
					t.Errorf("chunked scan saw %d stable keys want %d", stable, stableKeys)
					return
				}
			}
		}(7 + s*20)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}

// TestScanChunkedStatsClean: a quiescent multi-round scan certifies —
// TornStripes == 0 — and reports the round count.
func TestScanChunkedStatsClean(t *testing.T) {
	m := MustNew(Config{Stripes: 4, BackendSpec: "skiplist", Seed: 9})
	const n = 400
	for i := uint64(0); i < n; i++ {
		m.Put(i, i)
	}
	var got int
	stats, err := m.ScanChunkedStats(context.Background(), 0, ^uint64(0), 16, func(k, v uint64) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("scan yielded %d pairs, want %d", got, n)
	}
	if stats.TornStripes != 0 {
		t.Fatalf("quiescent scan reported %d torn stripes", stats.TornStripes)
	}
	if stats.Rounds < 2 {
		t.Fatalf("400 keys / chunk 16 took %d rounds, want several", stats.Rounds)
	}
}

// TestScanChunkedStatsTorn: a write landing between two refills of the
// same stripe decertifies exactly that stripe. With one stripe and a
// chunk smaller than the key count, a Put from inside fn is guaranteed
// to fall between rounds.
func TestScanChunkedStatsTorn(t *testing.T) {
	m := MustNew(Config{Stripes: 1, BackendSpec: "skiplist"})
	const n = 64
	for i := uint64(0); i < n; i++ {
		m.Put(i, i)
	}
	wrote := false
	stats, err := m.ScanChunkedStats(context.Background(), 0, ^uint64(0), 8, func(k, v uint64) bool {
		if !wrote {
			// fn runs with no lock held; this write bumps the stripe's
			// stamp before its next refill.
			m.Put(n+1, 1)
			wrote = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornStripes != 1 {
		t.Fatalf("TornStripes = %d, want 1 (stripe written mid-scan)", stats.TornStripes)
	}

	// And a descriptor swap between refills decertifies too, even when
	// the write volume alone would not (same-backend lock swap: table
	// untouched, stamp poisoned + descriptor replaced).
	m2 := MustNew(Config{Stripes: 1, BackendSpec: "skiplist"})
	for i := uint64(0); i < n; i++ {
		m2.Put(i, i)
	}
	swapped := false
	stats, err = m2.ScanChunkedStats(context.Background(), 0, ^uint64(0), 8, func(k, v uint64) bool {
		if !swapped {
			if err := m2.Reconfigure(0, "tas", ""); err != nil {
				t.Errorf("Reconfigure: %v", err)
			}
			swapped = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornStripes != 1 {
		t.Fatalf("TornStripes = %d after mid-scan swap, want 1", stats.TornStripes)
	}
}
