package shard

import (
	"fmt"

	"repro/store"
)

// StripeSpecs returns the specs stripe i's current lock and backend were
// built from. They are construction values until the stripe is
// reconfigured, live values after; i must be in [0, Stripes()).
func (m *Map) StripeSpecs(i int) (lockSpec, backendSpec string) {
	d := m.stripes[i].desc.Load()
	return d.lockSpec, d.backendSpec
}

// Reconfigure swaps stripe i's admission and/or storage policy while the
// map serves traffic. An empty spec keeps the current one, so a caller
// can swap just the lock ("mcscr-stp", "") or just the backend
// ("", "skiplist"); when both resolve to the stripe's current specs the
// call is a no-op (no swap is counted). Specs are validated — built —
// before the stripe is disturbed, so a malformed spec returns a
// descriptive error and changes nothing.
//
// The swap protocol:
//
//  1. Build the replacement lock and backend outside any lock (seeded
//     and sized exactly as New would have built them for this stripe).
//  2. Quiesce: acquire the stripe's current (old) lock. In-flight
//     operations have drained; late arrivals either queue on the old
//     lock or will load the new descriptor.
//  3. Migrate: if the backend spec changed, copy every entry from the
//     old table into the new one via Range, still under the old lock.
//     An unchanged backend spec keeps the table — no copy, no
//     allocation.
//  4. Publish the new descriptor (atomic store). New arrivals now route
//     through the new lock and table.
//  5. Release the old lock. Waiters that were queued on it wake, observe
//     the descriptor changed, release, and retry on the new lock (see
//     stripe.lockCurrent) — mutual exclusion covers the swap with no
//     gap: every table access happens either under the old lock before
//     publication or under the new lock after it.
//
// The stripe is unavailable for the duration of the migration (O(keys in
// stripe) under the old lock); point operations queue exactly as they
// would behind any long critical section, and context operations'
// deadlines keep counting — a swap on a huge stripe can cost deadline
// misses. Lock counters are carried over: the retired lock's totals fold
// into the published descriptor's base, so Snapshot stays monotonic.
// Events recorded on the retired lock by waiters still draining off it
// after publication (bounded by the queue length at swap time) are not
// folded in — the one observability loss of a swap.
//
// Concurrent Reconfigure calls on the same stripe serialize; calls on
// different stripes are independent. Reconfigure never blocks operations
// on other stripes.
func (m *Map) Reconfigure(i int, lockSpec, backendSpec string) error {
	_, err := m.reconfigure(i, lockSpec, backendSpec)
	return err
}

// reconfigure is Reconfigure, additionally reporting whether a swap was
// actually applied (false for the validated no-op paths) — the exact
// accounting the controller needs, without racing other reconfigurers
// for the stripe's swap counter.
func (m *Map) reconfigure(i int, lockSpec, backendSpec string) (swapped bool, err error) {
	if i < 0 || i >= len(m.stripes) {
		return false, fmt.Errorf("shard: Reconfigure stripe %d out of range [0, %d)", i, len(m.stripes))
	}
	s := &m.stripes[i]
	s.swapMu.Lock()
	defer s.swapMu.Unlock()

	old := s.desc.Load()
	if lockSpec == "" {
		lockSpec = old.lockSpec
	}
	if backendSpec == "" {
		backendSpec = old.backendSpec
	}
	sameLock := lockSpec == old.lockSpec
	sameBackend := backendSpec == old.backendSpec
	if sameLock && sameBackend {
		return false, nil
	}

	// Step 1: build the replacements before touching the stripe.
	nd := &descriptor{
		lockSpec:    lockSpec,
		backendSpec: backendSpec,
		swaps:       old.swaps + 1,
	}
	if sameLock {
		// The lock object is reused: its counters keep accumulating and
		// waiters queued on it stay queued on the right lock.
		nd.mu, nd.stats, nd.base = old.mu, old.stats, old.base
	} else {
		mu, stats, err := m.buildLock(lockSpec, i)
		if err != nil {
			return false, err
		}
		nd.mu, nd.stats = mu, stats
	}
	if !sameBackend {
		table, err := m.buildBackend(backendSpec, i)
		if err != nil {
			return false, err
		}
		nd.table = table
	}

	// Step 2: quiesce under the old lock.
	old.mu.Lock()

	// Step 3: migrate (or keep) the table.
	if sameBackend {
		nd.table, nd.ordered = old.table, old.ordered
	} else {
		old.table.Range(func(k, v uint64) bool {
			nd.table.Put(k, v)
			return true
		})
		nd.ordered, _ = nd.table.(store.Ordered)
	}
	if !sameLock {
		// Retire the old lock's counters into the new descriptor's base.
		// Everything counted up to our own acquisition is included.
		nd.base = old.base
		if old.stats != nil {
			nd.base = nd.base.Add(old.stats.Stats())
		}
	}

	// Step 4: publish.
	s.desc.Store(nd)

	// Step 5: release the retired lock; its queued waiters re-route.
	old.mu.Unlock()
	return true, nil
}
