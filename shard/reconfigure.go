package shard

import (
	"fmt"

	"repro/store"
)

// StripeSpecs returns the specs stripe i's current lock and backend were
// built from. They are construction values until the stripe is
// reconfigured, live values after; i must be in [0, Stripes()).
func (m *Map) StripeSpecs(i int) (lockSpec, backendSpec string) {
	d := m.stripes[i].desc.Load()
	return d.lockSpec, d.backendSpec
}

// Reconfigure swaps stripe i's admission and/or storage policy while the
// map serves traffic. An empty spec keeps the current one, so a caller
// can swap just the lock ("mcscr-stp", "") or just the backend
// ("", "skiplist"); when both resolve to the stripe's current specs the
// call is a no-op (no swap is counted). Specs are validated — built —
// before the stripe is disturbed, so a malformed spec returns a
// descriptive error and changes nothing.
//
// The swap protocol:
//
//  1. Build the replacement lock and backend outside any lock (seeded
//     and sized exactly as New would have built them for this stripe).
//  2. Quiesce: acquire the stripe's current (old) lock. In-flight
//     operations have drained; late arrivals either queue on the old
//     lock or will load the new descriptor.
//  3. Migrate: if the backend spec changed, copy every entry from the
//     old table into the new one via Range, still under the old lock.
//     An unchanged backend spec keeps the table — no copy, no
//     allocation.
//  4. Poison the old descriptor's seqlock stamp (still under the old
//     lock), then publish the new descriptor (atomic store). New
//     arrivals now route through the new lock and table, and any
//     optimistic reader still probing through the old descriptor is
//     guaranteed to fail validation and re-read through the new one.
//  5. Release the old lock. Waiters that were queued on it wake, observe
//     the descriptor changed, release, and retry on the new lock (see
//     stripe.lockCurrent) — mutual exclusion covers the swap with no
//     gap: every table access happens either under the old lock before
//     publication or under the new lock after it. The old descriptor is
//     retired through the map's epoch; it counts as live
//     (RetiredDescriptors) until every reader pinned before publication
//     has unpinned.
//
// The stripe is unavailable for the duration of the migration (O(keys in
// stripe) under the old lock); point operations queue exactly as they
// would behind any long critical section, and context operations'
// deadlines keep counting — a swap on a huge stripe can cost deadline
// misses. Lock counters are carried over: the retired lock's totals fold
// into the published descriptor's base, so Snapshot stays monotonic.
// Events recorded on the retired lock by waiters still draining off it
// after publication (bounded by the queue length at swap time) are not
// folded in — the one observability loss of a swap.
//
// Concurrent Reconfigure calls on the same stripe serialize; calls on
// different stripes are independent. Reconfigure never blocks operations
// on other stripes.
func (m *Map) Reconfigure(i int, lockSpec, backendSpec string) error {
	_, err := m.reconfigure(i, lockSpec, backendSpec)
	return err
}

// reconfigure is Reconfigure, additionally reporting whether a swap was
// actually applied (false for the validated no-op paths) — the exact
// accounting the controller needs, without racing other reconfigurers
// for the stripe's swap counter.
func (m *Map) reconfigure(i int, lockSpec, backendSpec string) (swapped bool, err error) {
	if i < 0 || i >= len(m.stripes) {
		return false, fmt.Errorf("shard: Reconfigure stripe %d out of range [0, %d)", i, len(m.stripes))
	}
	s := &m.stripes[i]
	s.swapMu.Lock()
	defer s.swapMu.Unlock()

	old := s.desc.Load()
	if lockSpec == "" {
		lockSpec = old.lockSpec
	}
	if backendSpec == "" {
		backendSpec = old.backendSpec
	}
	sameLock := lockSpec == old.lockSpec
	sameBackend := backendSpec == old.backendSpec
	if sameLock && sameBackend {
		return false, nil
	}

	// Step 1: build the replacements before touching the stripe.
	nd := &descriptor{
		lockSpec:    lockSpec,
		backendSpec: backendSpec,
		swaps:       old.swaps + 1,
	}
	if sameLock {
		// The lock object is reused: its counters keep accumulating and
		// waiters queued on it stay queued on the right lock.
		nd.mu, nd.stats, nd.base = old.mu, old.stats, old.base
	} else {
		mu, stats, err := m.buildLock(lockSpec, i)
		if err != nil {
			return false, err
		}
		nd.mu, nd.stats = mu, stats
	}
	if !sameBackend {
		table, err := m.buildBackend(backendSpec, i)
		if err != nil {
			return false, err
		}
		nd.table = table
	}

	// Step 2: quiesce under the old lock.
	old.mu.Lock()

	// Step 3: migrate (or keep) the table.
	if sameBackend {
		nd.table, nd.ordered, nd.opt = old.table, old.ordered, old.opt
	} else {
		old.table.Range(func(k, v uint64) bool {
			nd.table.Put(k, v)
			return true
		})
		nd.ordered, _ = nd.table.(store.Ordered)
		if m.readPath.Optimistic {
			nd.opt, _ = nd.table.(store.OptimisticReader)
		}
	}
	if !sameLock {
		// Retire the old lock's counters into the new descriptor's base.
		// Everything counted up to our own acquisition is included.
		nd.base = old.base
		if old.stats != nil {
			nd.base = nd.base.Add(old.stats.Stats())
		}
	}

	// Step 3½: poison the outgoing descriptor's seqlock stamp — still
	// under the old lock, before publication. An optimistic reader that
	// loaded the old descriptor can keep probing its table arbitrarily
	// late; the poison (odd forever) guarantees its validation fails and
	// it re-reads through the published descriptor. Ordering matters on
	// the same-lock path, where the new descriptor shares the old one's
	// table: all stamp and slot operations are sequentially consistent,
	// so a reader that observes any post-swap mutation also observes the
	// poison that preceded the swap in the writer's program order.
	old.seq.Poison()

	// Step 4: publish.
	s.desc.Store(nd)

	// Step 5: release the retired lock; its queued waiters re-route.
	old.mu.Unlock()

	// Step 6: retire the old descriptor through the epoch. The grace
	// period ends once every reader pinned before publication has
	// unpinned; until then the descriptor counts as retired-but-live
	// (RetiredDescriptors). Collection needs no dedicated thread: the
	// advance attempted here collects prior retirees, and the lite
	// snapshot sampler's heartbeat collects this one.
	m.retired.Add(1)
	m.epoch.Retire(func() { m.retired.Add(-1) })
	m.epoch.TryAdvance()
	return true, nil
}
