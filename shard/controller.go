package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Policy decides, stripe by stripe, whether a stripe's observed behaviour
// warrants a live reconfiguration. It is the control-plane contract the
// policy package's registry implementations satisfy ("static",
// "malthusian", "scanaware"), and the paper's thesis made operational:
// admission policy should adapt to observed contention, so the decision
// function consumes exactly what the map observes.
type Policy interface {
	// Decide inspects one stripe's previous and current snapshots — one
	// controller interval apart — and returns the specs to reconfigure
	// the stripe to. swap=false means leave the stripe alone (the spec
	// strings are then ignored); an empty returned spec keeps that half
	// of the stripe's configuration, exactly as Map.Reconfigure
	// documents.
	//
	// Decide is always called from a single goroutine (the controller
	// loop), for every stripe, every interval, in stripe order — an
	// implementation may keep per-stripe state (hysteresis counters, the
	// spec to restore) without synchronization. Counters in the
	// snapshots are cumulative; subtract (core.Snapshot.Sub) for rates.
	//
	// The controller's snapshots are lite: Fairness carries only the
	// cheap signals (Admissions, RecentLWSS); the O(history)-and-worse
	// instruments (AvgLWSS, MTTR, Gini, RSTDDEV) read zero, because
	// recomputing them per stripe per tick would cost the data plane
	// more than any decision could win back. Policies must key on the
	// cheap signals and the counter deltas.
	Decide(prev, cur StripeSnapshot) (lockSpec, backendSpec string, swap bool)
}

// DefaultControllerInterval is the snapshot cadence when StartController
// is given a nonpositive interval.
const DefaultControllerInterval = 50 * time.Millisecond

// Controller drives a Policy against a live Map: every interval it
// snapshots the map, offers each stripe's (previous, current) snapshot
// pair to the policy, and applies the swaps the policy asks for via
// Map.Reconfigure. Construct with StartController.
type Controller struct {
	m        *Map
	pol      Policy
	interval time.Duration

	cancel   context.CancelFunc
	done     chan struct{}
	stopOnce sync.Once

	swaps     atomic.Uint64
	rejected  atomic.Uint64
	lastDelta atomic.Pointer[SnapshotDelta]
}

// StartController launches a controller goroutine adapting m under pol
// every interval (nonpositive means DefaultControllerInterval). The
// controller runs until ctx is cancelled or Stop is called. The first
// decision happens one full interval after the start — the controller
// needs two snapshots before rates exist.
//
// The controller's own snapshots take each stripe lock briefly (the
// Snapshot protocol), and an applied swap quiesces the stripe it
// reconfigures — the control plane shares the data plane's locks by
// design, so pick an interval that amortizes that cost (the default is a
// comfortable 50ms). The lite snapshot's per-stripe cost is O(1)
// regardless of Config.HistoryWindow: RecentLWSS comes from the
// recorder's incrementally maintained trailing distinct count
// (metrics.Recorder.RecentDistinct), not a window walk.
func StartController(ctx context.Context, m *Map, pol Policy, interval time.Duration) *Controller {
	if interval <= 0 {
		interval = DefaultControllerInterval
	}
	cctx, cancel := context.WithCancel(ctx)
	c := &Controller{
		m:        m,
		pol:      pol,
		interval: interval,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	go c.run(cctx)
	return c
}

// Stop halts the controller and waits for its loop to exit; it is
// idempotent and safe to call concurrently with ctx cancellation.
func (c *Controller) Stop() {
	c.stopOnce.Do(c.cancel)
	<-c.done
}

// Swaps returns how many reconfigurations the controller has applied.
func (c *Controller) Swaps() uint64 { return c.swaps.Load() }

// Rejected returns how many policy decisions Map.Reconfigure refused
// (a policy returning a malformed spec fails safe: the stripe is left
// untouched and the rejection counted here).
func (c *Controller) Rejected() uint64 { return c.rejected.Load() }

// LastDelta returns the most recent per-interval delta the controller
// computed (Snapshot.Sub of its last two snapshots), or a zero delta
// before the first interval completes. It is the controller's view of
// the map's rates, exposed for dashboards and tests.
func (c *Controller) LastDelta() SnapshotDelta {
	if d := c.lastDelta.Load(); d != nil {
		return *d
	}
	return SnapshotDelta{}
}

//lockcheck:nosnapshot
func (c *Controller) run(ctx context.Context) {
	defer close(c.done)
	// Snapshots ride the controller's ctx so cancellation (Stop) is
	// honored even while a tick waits behind a stripe mid-migration; a
	// failed snapshot is the loop exiting, not a decision input.
	prev, err := c.m.SnapshotLite(ctx)
	if err != nil {
		return
	}
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		cur, err := c.m.SnapshotLite(ctx)
		if err != nil {
			return
		}
		delta := cur.Sub(prev)
		c.lastDelta.Store(&delta)
		for i := range cur.Stripes {
			lockSpec, backendSpec, swap := c.pol.Decide(prev.Stripes[i], cur.Stripes[i])
			if !swap {
				continue
			}
			// reconfigure (not Reconfigure) reports whether a swap was
			// actually applied: a decision whose specs already match the
			// stripe's is a validated no-op and must not inflate Swaps.
			applied, err := c.m.reconfigure(i, lockSpec, backendSpec)
			if err != nil {
				c.rejected.Add(1)
				continue
			}
			if applied {
				c.swaps.Add(1)
			}
		}
		// The pre-swap snapshot becomes the baseline: the next interval's
		// deltas then include the swap's own effects (migration
		// acquisitions, the reset-to-base counters), which is what the
		// policy's hysteresis is sized to absorb.
		prev = cur
	}
}
