// Package shard implements a concurrent, sharded key-value store whose
// per-stripe admission policy is a Malthusian lock chosen by registry
// spec. It is the first layer of this repository where real service
// traffic shapes — key skew, request deadlines, per-shard admission
// policy — are first-class.
//
// A Map is a power-of-two array of stripes. Each stripe is an independent
// single-threaded table built from Config.BackendSpec via store.New,
// guarded by its own lock built from Config.LockSpec via lock.New. Both
// policies — the admission policy that decides whether a hot stripe
// collapses or scales ("Malthusian Locks", EuroSys 2017), and the data
// structure that serves it — are runtime configuration, not code:
//
//	m, err := shard.New(shard.Config{
//		Stripes:     64,
//		LockSpec:    "mcscr-stp?fairness=500",
//		BackendSpec: "skiplist",
//	})
//
// Keys are routed by the high bits of the same 64-bit mixer the hashmap
// backend probes with its low bits, so stripe routing never degrades
// in-stripe probing. An ordered backend (store.Ordered: "skiplist",
// "rbtree") additionally enables Scan/ScanContext — cross-stripe range
// queries in global key order; with the default "hashmap" backend those
// return ErrUnordered.
//
// # Deadlines
//
// Every operation has a plain and a context form (Get/GetContext, ...).
// The context forms bound the time-to-stripe: acquisition of the stripe
// lock goes through lock.ContextMutex.LockContext, so a request whose
// deadline expires while queued abandons its slot and returns ctx.Err()
// without touching the table. Once the stripe lock is held the operation
// itself is bounded (a few probes), so time-to-stripe is the deadline
// semantics that matters; a handoff that races the cancellation wins,
// exactly as documented for ContextMutex.
//
// # Observability
//
// Each stripe's lock keeps the usual CR event counters, and optionally an
// admission history: context operations that carry a client id (see
// WithClientID) record it inside the critical section. Snapshot rolls
// both up — aggregate core stats for the whole map, and per-stripe
// fairness summaries (LWSS, MTTR, Gini, RSTDDEV via metrics.Summarize),
// which is where collapse actually shows up: a uniformly loaded map can
// hide one collapsed stripe in its averages, but not in its per-stripe
// LWSS.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/lock"
	"repro/metrics"
	"repro/store"
)

// Defaults for Config zero values.
const (
	DefaultStripes     = 16
	DefaultLockSpec    = "mcscr-stp"
	DefaultBackendSpec = "hashmap"
)

// ErrUnordered is returned by Scan and ScanContext when the configured
// backend does not maintain key order (it does not satisfy
// store.Ordered). Pick an ordered backend ("skiplist", "rbtree") to
// serve range queries.
var ErrUnordered = errors.New("shard: backend is not ordered")

// Config configures a Map. The zero value is usable: DefaultStripes
// stripes of DefaultLockSpec locks, no history recording.
type Config struct {
	// Stripes is the number of stripes, rounded up to a power of two.
	// 0 means DefaultStripes.
	Stripes int

	// LockSpec is the registry spec (see lock.New) each stripe's lock is
	// built from. Empty means DefaultLockSpec. Specs with stats=false
	// still work; Snapshot then reports zero lock counters.
	LockSpec string

	// BackendSpec is the registry spec (see store.New) each stripe's
	// table is built from. Empty means DefaultBackendSpec ("hashmap").
	// An ordered backend ("skiplist", "rbtree") additionally enables
	// Scan/ScanContext.
	BackendSpec string

	// Seed, when nonzero, seeds each stripe's lock and backend PRNGs
	// with distinct values derived from it (unless a spec pins seed=
	// itself, which wins). Zero leaves both on their fixed default
	// seeds.
	Seed uint64

	// Capacity pre-sizes the map for this many total keys, spread evenly
	// across stripes, where the backend can pre-size at all (the hashmap
	// backend's slot arrays; the tree and skip-list backends allocate
	// per key and ignore it). 0 uses the tables' minimum size.
	Capacity int

	// HistoryCap, when positive, makes each stripe record the admission
	// history of client-identified context operations (see WithClientID),
	// up to HistoryCap admissions per stripe; recording then stops so a
	// long-lived service cannot grow the history without bound. The full
	// capacity is preallocated per stripe (8 bytes per admission), so
	// recording never reallocates inside the critical section — size it
	// with Stripes in mind. 0 disables recording and Snapshot's fairness
	// summaries come back empty.
	HistoryCap int

	// HistoryWindow is the LWSS window for Snapshot's per-stripe
	// summaries. 0 means metrics.DefaultWindow.
	HistoryWindow int
}

// stripe is one shard: a table and the lock that admits threads to it.
// The mutated state lives behind the pointers (each its own allocation),
// so adjacent stripe headers in the slice share lines harmlessly.
type stripe struct {
	mu      lock.ContextMutex
	stats   lock.Instrumented // mu, when it maintains counters; else nil
	table   store.Backend
	ordered store.Ordered     // table, when it maintains key order; else nil
	rec     *metrics.Recorder // nil when history is disabled
	hcap    int
}

// Map is the sharded store. All methods are safe for concurrent use.
type Map struct {
	stripes []stripe
	shift   uint // stripe index = Mix(key) >> shift
	window  int
	backend string // the resolved backend spec, for Scan's error
}

// New builds a Map from cfg. It fails with a descriptive error when the
// lock spec is malformed or names an unknown lock.
func New(cfg Config) (*Map, error) {
	n := cfg.Stripes
	if n <= 0 {
		n = DefaultStripes
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n)) // round up to a power of two
	}
	spec := cfg.LockSpec
	if spec == "" {
		spec = DefaultLockSpec
	}
	bspec := cfg.BackendSpec
	if bspec == "" {
		bspec = DefaultBackendSpec
	}
	window := cfg.HistoryWindow
	if window <= 0 {
		window = metrics.DefaultWindow
	}
	perStripe := 0
	if cfg.Capacity > 0 {
		perStripe = (cfg.Capacity + n - 1) / n
	}
	m := &Map{
		stripes: make([]stripe, n),
		shift:   uint(64 - bits.TrailingZeros(uint(n))),
		window:  window,
		backend: bspec,
	}
	for i := range m.stripes {
		var opts []lock.Option
		var bopts []store.Option
		if perStripe > 0 {
			bopts = append(bopts, store.WithCapacity(perStripe))
		}
		if cfg.Seed != 0 {
			// Distinct per-stripe seeds so fairness trials (and skip-list
			// towers) do not run in lockstep across stripes; a spec's
			// seed= overrides.
			derived := cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
			opts = append(opts, lock.WithSeed(derived))
			bopts = append(bopts, store.WithSeed(derived))
		}
		mtx, err := lock.New(spec, opts...)
		if err != nil {
			return nil, fmt.Errorf("shard: stripe lock: %w", err)
		}
		cm, ok := mtx.(lock.ContextMutex)
		if !ok {
			// Registry locks all satisfy ContextMutex; a custom Register
			// that does not cannot serve deadline-bounded operations.
			return nil, fmt.Errorf("shard: lock spec %q builds a %T, which is not a lock.ContextMutex", spec, mtx)
		}
		table, err := store.New(bspec, bopts...)
		if err != nil {
			return nil, fmt.Errorf("shard: stripe table: %w", err)
		}
		s := &m.stripes[i]
		s.mu = cm
		s.stats, _ = mtx.(lock.Instrumented)
		s.table = table
		s.ordered, _ = table.(store.Ordered)
		if cfg.HistoryCap > 0 {
			// Preallocate the whole (bounded) cap: a growth-copy of a
			// multi-MB history inside the critical section would charge an
			// instrumentation stall to every queued request's deadline.
			s.rec = metrics.NewRecorder(cfg.HistoryCap)
			s.hcap = cfg.HistoryCap
		}
	}
	return m, nil
}

// MustNew is New for initialization paths where a malformed config is a
// programming error; it panics instead of returning one.
func MustNew(cfg Config) *Map {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Stripes returns the stripe count (a power of two).
func (m *Map) Stripes() int { return len(m.stripes) }

// StripeFor returns the index of the stripe serving key.
func (m *Map) StripeFor(key uint64) int { return int(hashmap.Mix(key) >> m.shift) }

func (m *Map) stripe(key uint64) *stripe { return &m.stripes[m.StripeFor(key)] }

// clientIDKey carries a client identity through a context (WithClientID).
type clientIDKey struct{}

// WithClientID returns a context carrying the caller's client id. Context
// operations on a history-recording Map (Config.HistoryCap > 0) record
// the id into the owning stripe's admission history, which is what feeds
// Snapshot's per-stripe LWSS/Gini. Operations without an id (or any id on
// a non-recording Map) are served identically but leave no history.
func WithClientID(ctx context.Context, id int) context.Context {
	return context.WithValue(ctx, clientIDKey{}, id)
}

// ClientID extracts the client id set by WithClientID.
func ClientID(ctx context.Context) (int, bool) {
	id, ok := ctx.Value(clientIDKey{}).(int)
	return id, ok
}

// client resolves ctx's admission-history id before the stripe lock is
// taken: the context.Value walk (arbitrarily deep in a real request's
// context chain) must not lengthen the critical section the lock exists
// to keep short. ok is false when recording is off or ctx carries no id.
func (s *stripe) client(ctx context.Context) (int, bool) {
	if s.rec == nil {
		return 0, false
	}
	return ClientID(ctx)
}

// record appends one admission, inside the critical section (the stripe
// lock serializes appends, the same protocol metrics.Recorder documents;
// the cap check reads the recorder, so it too must run under the lock).
func (s *stripe) record(id int) {
	if s.rec.Len() < s.hcap {
		s.rec.Record(id)
	}
}

// Get returns the value for key and whether it was present.
func (m *Map) Get(key uint64) (uint64, bool) {
	s := m.stripe(key)
	s.mu.Lock()
	v, ok := s.table.Get(key)
	s.mu.Unlock()
	return v, ok
}

// Put inserts or updates key. It reports whether the key was new.
func (m *Map) Put(key, val uint64) bool {
	s := m.stripe(key)
	s.mu.Lock()
	fresh := s.table.Put(key, val)
	s.mu.Unlock()
	return fresh
}

// Delete removes key; it reports whether the key was present.
func (m *Map) Delete(key uint64) bool {
	s := m.stripe(key)
	s.mu.Lock()
	present := s.table.Delete(key)
	s.mu.Unlock()
	return present
}

// lockStripe takes s's lock, bounded by ctx when ctx is non-nil. The
// multi-stripe reads thread their optional context through it.
func lockStripe(s *stripe, ctx context.Context) error {
	if ctx == nil {
		s.mu.Lock()
		return nil
	}
	return s.mu.LockContext(ctx)
}

// Len returns the number of keys present. Like every multi-stripe read it
// is a per-stripe-consistent sum, not a point-in-time snapshot.
func (m *Map) Len() int {
	n, _ := m.lenStripes(nil)
	return n
}

// LenContext is Len with every stripe acquisition bounded by ctx, so a
// monitoring path never blocks uncancellably behind a collapsed stripe.
func (m *Map) LenContext(ctx context.Context) (int, error) {
	return m.lenStripes(ctx)
}

func (m *Map) lenStripes(ctx context.Context) (int, error) {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		if err := lockStripe(s, ctx); err != nil {
			return 0, err
		}
		n += s.table.Len()
		s.mu.Unlock()
	}
	return n, nil
}

// GetContext is Get with the stripe acquisition bounded by ctx.
func (m *Map) GetContext(ctx context.Context, key uint64) (val uint64, ok bool, err error) {
	s := m.stripe(key)
	id, recording := s.client(ctx)
	if err := s.mu.LockContext(ctx); err != nil {
		return 0, false, err
	}
	if recording {
		s.record(id)
	}
	v, ok := s.table.Get(key)
	s.mu.Unlock()
	return v, ok, nil
}

// PutContext is Put with the stripe acquisition bounded by ctx.
func (m *Map) PutContext(ctx context.Context, key, val uint64) (fresh bool, err error) {
	s := m.stripe(key)
	id, recording := s.client(ctx)
	if err := s.mu.LockContext(ctx); err != nil {
		return false, err
	}
	if recording {
		s.record(id)
	}
	fresh = s.table.Put(key, val)
	s.mu.Unlock()
	return fresh, nil
}

// DeleteContext is Delete with the stripe acquisition bounded by ctx.
func (m *Map) DeleteContext(ctx context.Context, key uint64) (present bool, err error) {
	s := m.stripe(key)
	id, recording := s.client(ctx)
	if err := s.mu.LockContext(ctx); err != nil {
		return false, err
	}
	if recording {
		s.record(id)
	}
	present = s.table.Delete(key)
	s.mu.Unlock()
	return present, nil
}

// Range calls fn for every key/value pair until fn returns false. It
// visits stripes one at a time: each stripe's pairs are copied out under
// that stripe's lock and fn runs on the copy with no lock held, so fn may
// call back into the Map freely. The traversal is per-stripe consistent;
// concurrent writers may be observed in some stripes and not others.
func (m *Map) Range(fn func(key, val uint64) bool) {
	m.rangeStripes(nil, fn)
}

// RangeContext is Range with every stripe acquisition bounded by ctx; it
// returns ctx.Err() from the first stripe whose lock could not be taken
// in time (pairs already yielded stay yielded).
func (m *Map) RangeContext(ctx context.Context, fn func(key, val uint64) bool) error {
	return m.rangeStripes(ctx, fn)
}

type kv struct{ key, val uint64 }

func (m *Map) rangeStripes(ctx context.Context, fn func(key, val uint64) bool) error {
	var pairs []kv
	for i := range m.stripes {
		s := &m.stripes[i]
		if err := lockStripe(s, ctx); err != nil {
			return err
		}
		pairs = pairs[:0]
		s.table.Range(func(k, v uint64) bool {
			pairs = append(pairs, kv{k, v})
			return true
		})
		s.mu.Unlock()
		for _, p := range pairs {
			if !fn(p.key, p.val) {
				return nil
			}
		}
	}
	return nil
}

// Scan calls fn for every key/value pair with lo <= key <= hi, in
// ascending global key order, until fn returns false. Bounds are
// inclusive, so the full domain is Scan(0, ^uint64(0), fn).
//
// Scan requires an ordered backend (Config.BackendSpec naming a
// store.Ordered implementation: "skiplist", "rbtree"); with an unordered
// backend it returns ErrUnordered without visiting anything. Keys are
// hash-routed, so every stripe holds an arbitrary subset of [lo, hi]:
// each stripe's matches are copied out under that stripe's lock (one
// stripe at a time, like Range), then merged across stripes into global
// key order before fn sees the first pair. fn therefore runs with no
// lock held and may call back into the Map, but a Scan buffers all
// matching pairs — size ranges accordingly. Like every multi-stripe
// read the result is per-stripe consistent, not a point-in-time
// snapshot.
func (m *Map) Scan(lo, hi uint64, fn func(key, val uint64) bool) error {
	return m.scanStripes(nil, lo, hi, fn)
}

// ScanContext is Scan with every stripe acquisition bounded by ctx; it
// returns ctx.Err() from the first stripe whose lock could not be taken
// in time (fn then sees no pairs at all — the merge happens after every
// stripe has been visited).
func (m *Map) ScanContext(ctx context.Context, lo, hi uint64, fn func(key, val uint64) bool) error {
	return m.scanStripes(ctx, lo, hi, fn)
}

// Ordered reports whether the configured backend maintains key order,
// i.e. whether Scan and ScanContext can serve range queries.
func (m *Map) Ordered() bool { return m.stripes[0].ordered != nil }

// BackendSpec returns the resolved backend spec the stripes were built
// from.
func (m *Map) BackendSpec() string { return m.backend }

func (m *Map) scanStripes(ctx context.Context, lo, hi uint64, fn func(key, val uint64) bool) error {
	if !m.Ordered() {
		return fmt.Errorf("%w: backend spec %q has no Scan (known ordered backends implement store.Ordered)",
			ErrUnordered, m.backend)
	}
	// Phase 1: per-stripe collection. Each stripe's Scan yields its
	// matches already in ascending order; they are copied out under the
	// stripe lock so the merge (and fn) run with no lock held.
	runs := make([][]kv, 0, len(m.stripes))
	for i := range m.stripes {
		s := &m.stripes[i]
		if err := lockStripe(s, ctx); err != nil {
			return err
		}
		var run []kv
		s.ordered.Scan(lo, hi, func(k, v uint64) bool {
			run = append(run, kv{k, v})
			return true
		})
		s.mu.Unlock()
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	// Phase 2: k-way merge of the sorted runs. Every key lives in exactly
	// one stripe, so no tie-breaking is needed. A binary heap over the
	// run heads keeps the merge O(N log S) for S stripes.
	h := make([]int, len(runs)) // heap of run indices, keyed by head key
	pos := make([]int, len(runs))
	for i := range runs {
		h[i] = i
	}
	headKey := func(i int) uint64 { return runs[h[i]][pos[h[i]]].key }
	less := func(i, j int) bool { return headKey(i) < headKey(j) }
	var siftDown func(i int)
	siftDown = func(i int) {
		for {
			l, r, min := 2*i+1, 2*i+2, i
			if l < len(h) && less(l, min) {
				min = l
			}
			if r < len(h) && less(r, min) {
				min = r
			}
			if min == i {
				return
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		run := h[0]
		p := runs[run][pos[run]]
		if !fn(p.key, p.val) {
			return nil
		}
		pos[run]++
		if pos[run] == len(runs[run]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(0)
		}
	}
	return nil
}

// StripeSnapshot is the observable state of one stripe.
type StripeSnapshot struct {
	// Index is the stripe's position in the map.
	Index int
	// Len is the stripe's key count.
	Len int
	// Lock is the stripe lock's CR event counters (zero when the spec set
	// stats=false).
	Lock core.Snapshot
	// Fairness summarizes the stripe's recorded admission history (zero
	// Admissions when history recording is off or no identified client
	// has been admitted).
	Fairness metrics.Summary
}

// Snapshot is the observable state of the whole map: per-stripe detail
// plus rolled-up totals.
type Snapshot struct {
	Stripes []StripeSnapshot
	// Lock is the field-wise sum of every stripe's lock counters.
	Lock core.Snapshot
	// Len is the total key count.
	Len int
}

// Snapshot collects per-stripe lengths, lock counters, and fairness
// summaries. The stripe lock is held only to read the table length and
// capture the history slice header — never for the O(HistoryCap) summary
// work, which would stall every request queued behind a monitoring
// scrape. Reading the captured history outside the lock is safe because
// the recorder's storage is preallocated to the full cap (recording stops
// rather than reallocate, see New), entries are immutable once written
// (the lock release/acquire orders them before us), concurrent appends
// touch only indices beyond our captured length, and this package never
// calls Reset — the condition metrics.History's ownership rule sets for
// holding an aliasing view. The cross-stripe view is per-stripe
// consistent.
func (m *Map) Snapshot() Snapshot {
	out, _ := m.snapshotStripes(nil)
	return out
}

// SnapshotContext is Snapshot with every stripe acquisition bounded by
// ctx: observability stays deadline-bounded even when the stripe it wants
// to observe is the one that collapsed.
func (m *Map) SnapshotContext(ctx context.Context) (Snapshot, error) {
	return m.snapshotStripes(ctx)
}

func (m *Map) snapshotStripes(ctx context.Context) (Snapshot, error) {
	out := Snapshot{Stripes: make([]StripeSnapshot, len(m.stripes))}
	for i := range m.stripes {
		s := &m.stripes[i]
		if err := lockStripe(s, ctx); err != nil {
			return Snapshot{}, err
		}
		ln := s.table.Len()
		var h metrics.History
		if s.rec != nil {
			h = s.rec.History()
		}
		s.mu.Unlock()
		var ls core.Snapshot
		if s.stats != nil {
			ls = s.stats.Stats()
		}
		out.Stripes[i] = StripeSnapshot{
			Index:    i,
			Len:      ln,
			Lock:     ls,
			Fairness: metrics.Summarize(h, m.window),
		}
		out.Len += ln
		out.Lock = out.Lock.Add(ls)
	}
	return out, nil
}
