// Package shard implements a concurrent, sharded key-value store whose
// per-stripe admission policy is a Malthusian lock chosen by registry
// spec. It is the first layer of this repository where real service
// traffic shapes — key skew, request deadlines, per-shard admission
// policy — are first-class.
//
// A Map is a power-of-two array of stripes. Each stripe is an independent
// single-threaded table built from Config.BackendSpec via store.New,
// guarded by its own lock built from Config.LockSpec via lock.New. Both
// policies — the admission policy that decides whether a hot stripe
// collapses or scales ("Malthusian Locks", EuroSys 2017), and the data
// structure that serves it — are runtime configuration, not code:
//
//	m, err := shard.New(shard.Config{
//		Stripes:     64,
//		LockSpec:    "mcscr-stp?fairness=500",
//		BackendSpec: "skiplist",
//	})
//
// Keys are routed by the high bits of the same 64-bit mixer the hashmap
// backend probes with its low bits, so stripe routing never degrades
// in-stripe probing. An ordered backend (store.Ordered: "skiplist",
// "rbtree") additionally enables Scan/ScanContext — cross-stripe range
// queries in global key order; with the default "hashmap" backend those
// return ErrUnordered.
//
// # Live reconfiguration
//
// Stripe policy is not frozen at New: each stripe holds an atomically
// published descriptor (lock + backend + the specs they were built from),
// and Reconfigure swaps a stripe's descriptor while traffic is in flight —
// quiescing under the old lock, migrating entries into the new backend,
// then routing new arrivals through the new lock. StripeSpecs reports the
// live specs. A Controller (see Policy) closes the loop the paper opens:
// it watches per-stripe Snapshots and reconfigures stripes whose observed
// contention says the current policy is wrong — the system-level analog of
// MCSCR's culling, lifted from one lock to the whole stripe array.
//
// # Deadlines
//
// Every operation has a plain and a context form (Get/GetContext, ...).
// The context forms bound the time-to-stripe: acquisition of the stripe
// lock goes through lock.ContextMutex.LockContext, so a request whose
// deadline expires while queued abandons its slot and returns ctx.Err()
// without touching the table. Once the stripe lock is held the operation
// itself is bounded (a few probes), so time-to-stripe is the deadline
// semantics that matters; a handoff that races the cancellation wins,
// exactly as documented for ContextMutex.
//
// # Reading without locks
//
// Config.ReadPath selects how Gets are served. The default ("locked")
// acquires the stripe lock like every other operation. "optimistic"
// serves Gets with no lock at all on backends that support it
// (store.OptimisticReader — the hashmap backend): the stripe's write
// path brackets every mutation with a seqlock stamp (optimistic.Seq)
// inside the descriptor, and a reader snapshots the stamp, probes the
// table with torn-read-safe atomic loads, and revalidates. An unchanged
// stamp proves no writer overlapped, making the read linearizable; a
// changed stamp retries, and after Config's retry budget the reader
// falls back to the stripe lock — so a write storm degrades reads to
// exactly the locked path's behavior instead of livelocking them.
// Readers pin an epoch (optimistic.Epoch) around each probe, so
// descriptors retired by Reconfigure are counted dead only after a full
// grace period. Per-stripe hit/retry/fallback counters land in
// StripeSnapshot. See DESIGN.md §12 for the full protocol.
//
// # Observability
//
// Each stripe's lock keeps the usual CR event counters, and optionally an
// admission history: context operations that carry a client id (see
// WithClientID) record it inside the critical section. Snapshot rolls
// both up — aggregate core stats for the whole map, and per-stripe
// fairness summaries (LWSS, MTTR, Gini, RSTDDEV via metrics.Summarize),
// which is where collapse actually shows up: a uniformly loaded map can
// hide one collapsed stripe in its averages, but not in its per-stripe
// LWSS. Snapshot.Sub turns two successive snapshots into per-interval
// rates — the derivative an adaptive controller decides on.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/lock"
	"repro/metrics"
	"repro/optimistic"
	"repro/store"
)

// Defaults for Config zero values.
const (
	DefaultStripes     = 16
	DefaultLockSpec    = "mcscr-stp"
	DefaultBackendSpec = "hashmap"
)

// NumClasses is the number of request classes the per-stripe deadline
// accounting distinguishes. Class 0 is "unclassified": every context
// operation whose context does not carry a class (all in-process callers
// that predate classes, and wire requests that leave the class byte
// zero) lands there, so existing callers see exactly the counters they
// always did. Classes 1..NumClasses-1 are free for callers to assign
// meaning to (the wire protocol carries one class byte per request);
// per-class budgets are the first half of per-class SLOs — the slo
// policy still steers on the pooled totals.
const NumClasses = 4

// ErrUnordered is returned by Scan, ScanChunked, and their context forms
// when some stripe's current backend does not maintain key order (it does
// not satisfy store.Ordered). Pick an ordered backend ("skiplist",
// "rbtree") — at construction or via Reconfigure — to serve range
// queries.
var ErrUnordered = errors.New("shard: backend is not ordered")

// Config configures a Map. The zero value is usable: DefaultStripes
// stripes of DefaultLockSpec locks, no history recording.
type Config struct {
	// Stripes is the number of stripes, rounded up to a power of two.
	// 0 means DefaultStripes.
	Stripes int

	// LockSpec is the registry spec (see lock.New) each stripe's lock is
	// built from. Empty means DefaultLockSpec. Specs with stats=false
	// still work; Snapshot then reports zero lock counters.
	LockSpec string

	// BackendSpec is the registry spec (see store.New) each stripe's
	// table is built from. Empty means DefaultBackendSpec ("hashmap").
	// An ordered backend ("skiplist", "rbtree") additionally enables
	// Scan/ScanContext.
	BackendSpec string

	// Seed, when nonzero, seeds each stripe's lock and backend PRNGs
	// with distinct values derived from it (unless a spec pins seed=
	// itself, which wins). Zero leaves both on their fixed default
	// seeds. Locks and backends built later by Reconfigure derive their
	// seeds the same way.
	Seed uint64

	// Capacity pre-sizes the map for this many total keys, spread evenly
	// across stripes, where the backend can pre-size at all (the hashmap
	// backend's slot arrays; the tree and skip-list backends allocate
	// per key and ignore it). 0 uses the tables' minimum size.
	Capacity int

	// HistoryCap, when positive, makes each stripe record the admission
	// history of client-identified context operations (see WithClientID),
	// up to HistoryCap admissions per stripe; recording then stops so a
	// long-lived service cannot grow the history without bound. The full
	// capacity is preallocated per stripe (8 bytes per admission), so
	// recording never reallocates inside the critical section — size it
	// with Stripes in mind. 0 disables recording and Snapshot's fairness
	// summaries come back empty.
	HistoryCap int

	// HistoryWindow is the LWSS window for Snapshot's per-stripe
	// summaries. 0 means metrics.DefaultWindow.
	HistoryWindow int

	// ReadPath selects how Gets are served (see optimistic.Parse).
	// Empty or "locked" is the classic path: every Get acquires the
	// stripe lock. "optimistic" (optionally "optimistic?retries=N")
	// serves Gets lock-free via seqlock validation on stripes whose
	// backend implements store.OptimisticReader, falling back to the
	// lock after N failed validations (default
	// optimistic.DefaultRetries). Stripes whose backend declines the
	// interface keep the locked path even under "optimistic".
	//
	// Two accounting consequences of a lock-free hit: the Get leaves no
	// admission history (WithClientID records inside the critical
	// section the optimistic path exists to skip), and a hit races a
	// concurrent deadline expiry the way a lock handoff does — the
	// completed read wins and the budgeted attempt counts no miss.
	ReadPath string
}

// descriptor is one stripe's swappable policy pair: the lock that admits
// threads and the table they operate on, plus the specs both were built
// from. A descriptor is immutable once published — Reconfigure builds a
// new one and atomically replaces the old — so every field may be read
// without synchronization after an atomic load of the pointer.
type descriptor struct {
	mu    lock.ContextMutex
	stats lock.Instrumented // mu, when it maintains counters; else nil
	// table is the one descriptor field mutated after publication (by
	// the operations themselves), so it keeps the lock discipline the
	// rest of the descriptor opted out of. The optimistic read path
	// goes through opt, never table.
	//
	//lockcheck:guardedby mu
	table   store.Backend
	ordered store.Ordered // table, when it maintains key order; else nil

	// opt is table's torn-read-safe read extension, non-nil only when
	// the map's read path is optimistic AND the backend opted in
	// (store.OptimisticReader) — the per-stripe gate of the lock-free
	// Get. seq is the stripe's seqlock stamp: bumped odd/even around
	// every table mutation (under mu), validated by lock-free readers,
	// read under mu by ScanChunked to certify cross-chunk consistency,
	// and poisoned when Reconfigure retires this descriptor so stale
	// readers can never validate against a migrated-away table. The
	// stamp is maintained on every write path regardless of read path —
	// two uncontended atomic adds under a held lock — so scan
	// certification works even on locked-read maps.
	seq optimistic.Seq
	opt store.OptimisticReader

	lockSpec    string
	backendSpec string

	// base accumulates the counters of this stripe's retired locks, so
	// Snapshot totals stay monotonic across reconfigurations. swaps is
	// how many times this stripe has been reconfigured.
	base  core.Snapshot
	swaps uint64
}

// snapshot reads the descriptor's visible lock counters: the retired
// base plus the live lock's stats.
func (d *descriptor) snapshot() core.Snapshot {
	if d.stats == nil {
		return d.base
	}
	return d.base.Add(d.stats.Stats())
}

// stripe is one shard: the atomically published descriptor (lock +
// table), plus per-stripe state that survives reconfiguration. The
// mutated heavy state lives behind pointers (each its own allocation),
// so adjacent stripe headers in the slice share lines harmlessly: the
// descriptor pointer is only read on the op paths, and scans — the one
// counter written here — are orders of magnitude rarer than point ops.
type stripe struct {
	desc atomic.Pointer[descriptor]

	// swapMu serializes Reconfigure calls on this stripe. Operation
	// paths never touch it. Reconfigure quiesces the stripe under the
	// descriptor lock while holding swapMu, never the reverse:
	//
	//lockcheck:lockorder shard.stripe.swapMu<shard.descriptor.mu
	swapMu sync.Mutex

	rec  *metrics.Recorder // nil when history is disabled
	hcap int

	// Deadline accounting: budgeted point operations arriving at this
	// stripe (attempts) and how many of them expired before reaching it
	// (misses), broken down by request class (WithClass; index 0 is
	// unclassified traffic). A point context operation is budgeted when
	// its context can end at all (ctx.Done() != nil) — that is the
	// operation whose deadline semantics the lock machinery bounds, and
	// the user-facing signal the slo policy decides on. The counters
	// belong to the stripe, not the descriptor: a reconfiguration
	// changes the mechanism, not the objective, so miss history
	// survives swaps.
	deadlineAttempts [NumClasses]atomic.Uint64
	deadlineMisses   [NumClasses]atomic.Uint64

	// Optimistic read-path accounting, stripe-owned for the same
	// survives-reconfiguration reason as the deadline counters. optHits
	// counts Gets served lock-free (validation passed); optRetries
	// counts failed attempts (writer mid-section at snapshot, or
	// validation failure); optFallbacks counts Gets that exhausted the
	// retry budget and fell back to the stripe lock. Gets on stripes
	// whose backend declined the optimistic path count nothing here —
	// they are locked-path traffic, not failed optimism.
	optHits      atomic.Uint64
	optRetries   atomic.Uint64
	optFallbacks atomic.Uint64
}

// lockCurrent acquires the stripe's current descriptor's lock and
// returns the descriptor. The descriptor is re-validated after the
// acquisition: a waiter that slept through a Reconfigure wakes holding
// the retired lock, whose table has been migrated away — it releases and
// retries on the published descriptor. The caller must d.mu.Unlock().
//
//lockcheck:acquires return.mu
func (s *stripe) lockCurrent() *descriptor {
	for {
		d := s.desc.Load()
		d.mu.Lock()
		if s.desc.Load() == d {
			return d
		}
		d.mu.Unlock()
	}
}

// lockCurrentContext is lockCurrent bounded by ctx; a nil ctx means the
// plain (uncancellable) path. Exactly one lock Cancels event is counted
// per error return — retries only happen after successful acquisitions.
//
//lockcheck:acquires return.mu
func (s *stripe) lockCurrentContext(ctx context.Context) (*descriptor, error) {
	if ctx == nil {
		return s.lockCurrent(), nil
	}
	for {
		d := s.desc.Load()
		if err := d.mu.LockContext(ctx); err != nil {
			return nil, err
		}
		if s.desc.Load() == d {
			return d, nil
		}
		d.mu.Unlock()
	}
}

// Injector is the data-plane fault hook (see the fault package). When
// one is installed with SetInjector, every point operation calls InCS
// with the owning stripe's index while holding that stripe's lock — so
// an injected stall lengthens the critical section exactly where the
// paper's convoy dynamics punish it. InCS must be safe for concurrent
// use and should be cheap when no fault is active: it runs under the
// lock the whole map is built to keep short.
type Injector interface {
	InCS(stripe int)
}

// Map is the sharded store. All methods are safe for concurrent use.
type Map struct {
	stripes []stripe
	shift   uint // stripe index = Mix(key) >> shift
	window  int

	// inj is the installed fault injector; nil (the normal case) costs
	// one atomic pointer load per point op.
	inj atomic.Pointer[Injector]

	// scans counts scan work (one per Scan/ScanContext; a ScanChunked
	// counts one per refilling round, since each round re-acquires
	// stripe locks like a fresh Scan) — including attempts rejected
	// with ErrUnordered, deliberately: an adaptive controller needs to
	// see scan demand on a map whose current backends cannot serve it.
	// One map-level counter, because every scan visits every stripe — a
	// per-stripe count would be the same number stored Stripes times
	// (and an O(stripes) atomic storm per scan).
	scans atomic.Uint64

	// readPath is the parsed Config.ReadPath, immutable after New: the
	// hot-path gate of the optimistic Get is one plain bool read.
	readPath optimistic.ReadPath

	// epoch is the map's grace-period clock. Lock-free readers pin it
	// around each probe; Reconfigure retires replaced descriptors
	// through it; the lite-snapshot sampler drives collection.
	epoch *optimistic.Epoch

	// retired gauges descriptors replaced by Reconfigure whose grace
	// period has not yet completed (a reader pinned at swap time may
	// still be traversing the old table).
	retired atomic.Int64

	// Construction parameters reused when Reconfigure builds a stripe's
	// replacement lock or backend.
	seed      uint64
	perStripe int

	cfgLock    string // the resolved construction-time lock spec
	cfgBackend string // the resolved construction-time backend spec
}

// New builds a Map from cfg. It fails with a descriptive error when the
// lock spec is malformed or names an unknown lock.
func New(cfg Config) (*Map, error) {
	n := cfg.Stripes
	if n <= 0 {
		n = DefaultStripes
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n)) // round up to a power of two
	}
	spec := cfg.LockSpec
	if spec == "" {
		spec = DefaultLockSpec
	}
	bspec := cfg.BackendSpec
	if bspec == "" {
		bspec = DefaultBackendSpec
	}
	window := cfg.HistoryWindow
	if window <= 0 {
		window = metrics.DefaultWindow
	}
	perStripe := 0
	if cfg.Capacity > 0 {
		perStripe = (cfg.Capacity + n - 1) / n
	}
	rp, err := optimistic.Parse(cfg.ReadPath)
	if err != nil {
		return nil, fmt.Errorf("shard: read path: %w", err)
	}
	m := &Map{
		stripes:    make([]stripe, n),
		shift:      uint(64 - bits.TrailingZeros(uint(n))),
		window:     window,
		readPath:   rp,
		epoch:      optimistic.NewEpoch(),
		seed:       cfg.Seed,
		perStripe:  perStripe,
		cfgLock:    spec,
		cfgBackend: bspec,
	}
	for i := range m.stripes {
		mu, stats, err := m.buildLock(spec, i)
		if err != nil {
			return nil, err
		}
		table, err := m.buildBackend(bspec, i)
		if err != nil {
			return nil, err
		}
		d := &descriptor{
			mu:          mu,
			stats:       stats,
			table:       table,
			lockSpec:    spec,
			backendSpec: bspec,
		}
		d.ordered, _ = table.(store.Ordered)
		if rp.Optimistic {
			d.opt, _ = table.(store.OptimisticReader)
		}
		s := &m.stripes[i]
		s.desc.Store(d)
		if cfg.HistoryCap > 0 {
			// Preallocate the whole (bounded) cap: a growth-copy of a
			// multi-MB history inside the critical section would charge an
			// instrumentation stall to every queued request's deadline.
			// The recorder's window matches the map's, so its incremental
			// trailing distinct count is the lite snapshot's RecentLWSS.
			s.rec = metrics.NewRecorderWindow(cfg.HistoryCap, window)
			s.hcap = cfg.HistoryCap
		}
	}
	return m, nil
}

// buildLock builds stripe i's lock from spec, with the per-stripe derived
// seed (see Config.Seed). Reconfigure uses the same path, so a swapped-in
// lock is seeded exactly as a constructed one.
func (m *Map) buildLock(spec string, i int) (lock.ContextMutex, lock.Instrumented, error) {
	var opts []lock.Option
	if m.seed != 0 {
		opts = append(opts, lock.WithSeed(m.derivedSeed(i)))
	}
	mtx, err := lock.New(spec, opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("shard: stripe lock: %w", err)
	}
	cm, ok := mtx.(lock.ContextMutex)
	if !ok {
		// Registry locks all satisfy ContextMutex; a custom Register
		// that does not cannot serve deadline-bounded operations.
		return nil, nil, fmt.Errorf("shard: lock spec %q builds a %T, which is not a lock.ContextMutex", spec, mtx)
	}
	stats, _ := mtx.(lock.Instrumented)
	return cm, stats, nil
}

// buildBackend builds stripe i's table from spec, with the per-stripe
// capacity share and derived seed.
func (m *Map) buildBackend(spec string, i int) (store.Backend, error) {
	var opts []store.Option
	if m.perStripe > 0 {
		opts = append(opts, store.WithCapacity(m.perStripe))
	}
	if m.seed != 0 {
		opts = append(opts, store.WithSeed(m.derivedSeed(i)))
	}
	table, err := store.New(spec, opts...)
	if err != nil {
		return nil, fmt.Errorf("shard: stripe table: %w", err)
	}
	return table, nil
}

// derivedSeed gives stripe i a distinct seed so fairness trials (and
// skip-list towers) do not run in lockstep across stripes; a spec's
// seed= overrides.
func (m *Map) derivedSeed(i int) uint64 {
	return m.seed + uint64(i)*0x9e3779b97f4a7c15
}

// MustNew is New for initialization paths where a malformed config is a
// programming error; it panics instead of returning one.
func MustNew(cfg Config) *Map {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// SetInjector installs (or, with nil, removes) the fault injector whose
// InCS hook runs inside every point operation's critical section. The
// swap is atomic with respect to in-flight operations: each op reads the
// injector once. With none installed the hook costs a single atomic nil
// check per operation.
func (m *Map) SetInjector(inj Injector) {
	if inj == nil {
		m.inj.Store(nil)
		return
	}
	m.inj.Store(&inj)
}

// inject runs the installed injector's critical-section hook for stripe
// i; the caller holds stripe i's lock.
//
//lockcheck:cs
func (m *Map) inject(i int) {
	if p := m.inj.Load(); p != nil {
		(*p).InCS(i)
	}
}

// Stripes returns the stripe count (a power of two).
func (m *Map) Stripes() int { return len(m.stripes) }

// StripeFor returns the index of the stripe serving key.
func (m *Map) StripeFor(key uint64) int { return int(hashmap.Mix(key) >> m.shift) }

// clientIDKey carries a client identity through a context (WithClientID).
type clientIDKey struct{}

// WithClientID returns a context carrying the caller's client id. Context
// operations on a history-recording Map (Config.HistoryCap > 0) record
// the id into the owning stripe's admission history, which is what feeds
// Snapshot's per-stripe LWSS/Gini. Operations without an id (or any id on
// a non-recording Map) are served identically but leave no history.
func WithClientID(ctx context.Context, id int) context.Context {
	return context.WithValue(ctx, clientIDKey{}, id)
}

// ClientID extracts the client id set by WithClientID.
func ClientID(ctx context.Context) (int, bool) {
	id, ok := ctx.Value(clientIDKey{}).(int)
	return id, ok
}

// classKey carries a request class through a context (WithClass).
type classKey struct{}

// WithClass returns a context carrying a request class for per-class
// deadline accounting. Budgeted context operations (those whose context
// can end) count their stripe arrival and any deadline miss under this
// class in StripeSnapshot.ClassDeadlineAttempts/ClassDeadlineMisses.
// Out-of-range classes clamp to 0 (unclassified) — a caller that never
// calls WithClass is indistinguishable from one that asked for class 0,
// which is what keeps every pre-class in-process caller unchanged.
func WithClass(ctx context.Context, class int) context.Context {
	if class < 0 || class >= NumClasses {
		class = 0
	}
	return context.WithValue(ctx, classKey{}, class)
}

// Class extracts the request class set by WithClass; 0 (unclassified)
// when the context carries none.
func Class(ctx context.Context) int {
	c, _ := ctx.Value(classKey{}).(int)
	return c
}

// client resolves ctx's admission-history id before the stripe lock is
// taken: the context.Value walk (arbitrarily deep in a real request's
// context chain) must not lengthen the critical section the lock exists
// to keep short. ok is false when recording is off or ctx carries no id.
func (s *stripe) client(ctx context.Context) (int, bool) {
	if s.rec == nil {
		return 0, false
	}
	return ClientID(ctx)
}

// record appends one admission, inside the critical section (the stripe
// lock serializes appends, the same protocol metrics.Recorder documents;
// the cap check reads the recorder, so it too must run under the lock).
// Appends before and after a reconfiguration are still totally ordered:
// the swap acquires the old lock and publishes the new descriptor with a
// release store, so a pre-swap append happens-before the swap, which
// happens-before any append under the new lock.
//
//lockcheck:cs
func (s *stripe) record(id int) {
	if s.rec.Len() < s.hcap {
		s.rec.Record(id)
	}
}

// getOptimistic attempts one lock-free Get on s: snapshot the stripe's
// seqlock stamp, probe the backend with torn-read-safe loads under an
// epoch pin, revalidate. served is false when the stripe cannot serve
// optimistic reads (backend declined store.OptimisticReader) or the
// retry budget is exhausted — the caller then takes the locked path.
// A validated hit is linearizable at some instant inside its
// read window (see optimistic.Seq), so a hit is exactly as correct as a
// locked Get, minus the queueing.
//
// The injector hook does not run here: injected faults model long
// critical sections, and this path's entire point is having none. A
// stall armed on the write path lengthens writer sections, which this
// path observes as validation failures and — past the budget —
// fallbacks, which is the intended chaos behavior.
//
//lockcheck:optimistic
func (m *Map) getOptimistic(s *stripe, key uint64) (val uint64, ok, served bool) {
	for attempt := 0; attempt <= m.readPath.Retries; attempt++ {
		d := s.desc.Load()
		if d.opt == nil {
			return 0, false, false
		}
		stamp, stable := d.seq.ReadBegin()
		if stable {
			h := m.epoch.Pin()
			v, present := d.opt.GetOptimistic(key)
			h.Unpin()
			if d.seq.Validate(stamp) {
				s.optHits.Add(1)
				return v, present, true
			}
		}
		s.optRetries.Add(1)
	}
	s.optFallbacks.Add(1)
	return 0, false, false
}

// Get returns the value for key and whether it was present.
func (m *Map) Get(key uint64) (uint64, bool) {
	i := m.StripeFor(key)
	s := &m.stripes[i]
	if m.readPath.Optimistic {
		if v, ok, served := m.getOptimistic(s, key); served {
			return v, ok
		}
	}
	d := s.lockCurrent()
	m.inject(i)
	v, ok := d.table.Get(key)
	d.mu.Unlock()
	return v, ok
}

// Put inserts or updates key. It reports whether the key was new.
func (m *Map) Put(key, val uint64) bool {
	i := m.StripeFor(key)
	s := &m.stripes[i]
	d := s.lockCurrent()
	d.seq.WriteBegin()
	m.inject(i)
	fresh := d.table.Put(key, val)
	d.seq.WriteEnd()
	d.mu.Unlock()
	return fresh
}

// Delete removes key; it reports whether the key was present.
func (m *Map) Delete(key uint64) bool {
	i := m.StripeFor(key)
	s := &m.stripes[i]
	d := s.lockCurrent()
	d.seq.WriteBegin()
	m.inject(i)
	present := d.table.Delete(key)
	d.seq.WriteEnd()
	d.mu.Unlock()
	return present
}

// Len returns the number of keys present. Like every multi-stripe read it
// is a per-stripe-consistent sum, not a point-in-time snapshot.
func (m *Map) Len() int {
	n, _ := m.lenStripes(nil)
	return n
}

// LenContext is Len with every stripe acquisition bounded by ctx, so a
// monitoring path never blocks uncancellably behind a collapsed stripe.
func (m *Map) LenContext(ctx context.Context) (int, error) {
	return m.lenStripes(ctx)
}

func (m *Map) lenStripes(ctx context.Context) (int, error) {
	n := 0
	for i := range m.stripes {
		d, err := m.stripes[i].lockCurrentContext(ctx)
		if err != nil {
			return 0, err
		}
		n += d.table.Len()
		d.mu.Unlock()
	}
	return n, nil
}

// budgeted counts one deadline-bounded point-op arrival at this stripe,
// under the context's request class. An operation is budgeted when its
// context can end at all (Done() != nil): only those can miss, and only
// those are the SLO traffic the slo policy steers on. Monitoring paths
// (Snapshot, Len, Range, Scan) never count — a controller polling a
// collapsed stripe must not dilute the very miss rate it reacts to.
// The class lookup (a context.Value walk) is paid only by budgeted
// operations, which already built a cancellable context.
func (s *stripe) budgeted(ctx context.Context) (int, bool) {
	if ctx.Done() == nil {
		return 0, false
	}
	cls := Class(ctx)
	s.deadlineAttempts[cls].Add(1)
	return cls, true
}

// GetContext is Get with the stripe acquisition bounded by ctx. On the
// optimistic read path a validated lock-free hit completes the Get even
// if ctx has already expired — the hit wins the race the way a lock
// handoff racing a cancellation does — and counts a budgeted attempt
// with no miss.
func (m *Map) GetContext(ctx context.Context, key uint64) (val uint64, ok bool, err error) {
	i := m.StripeFor(key)
	s := &m.stripes[i]
	if m.readPath.Optimistic {
		if v, ok, served := m.getOptimistic(s, key); served {
			s.budgeted(ctx)
			return v, ok, nil
		}
	}
	id, recording := s.client(ctx)
	cls, budgeted := s.budgeted(ctx)
	d, err := s.lockCurrentContext(ctx)
	if err != nil {
		if budgeted {
			s.deadlineMisses[cls].Add(1)
		}
		return 0, false, err
	}
	if recording {
		s.record(id)
	}
	m.inject(i)
	v, ok := d.table.Get(key)
	d.mu.Unlock()
	return v, ok, nil
}

// PutContext is Put with the stripe acquisition bounded by ctx.
func (m *Map) PutContext(ctx context.Context, key, val uint64) (fresh bool, err error) {
	i := m.StripeFor(key)
	s := &m.stripes[i]
	id, recording := s.client(ctx)
	cls, budgeted := s.budgeted(ctx)
	d, err := s.lockCurrentContext(ctx)
	if err != nil {
		if budgeted {
			s.deadlineMisses[cls].Add(1)
		}
		return false, err
	}
	if recording {
		s.record(id)
	}
	d.seq.WriteBegin()
	m.inject(i)
	fresh = d.table.Put(key, val)
	d.seq.WriteEnd()
	d.mu.Unlock()
	return fresh, nil
}

// DeleteContext is Delete with the stripe acquisition bounded by ctx.
func (m *Map) DeleteContext(ctx context.Context, key uint64) (present bool, err error) {
	i := m.StripeFor(key)
	s := &m.stripes[i]
	id, recording := s.client(ctx)
	cls, budgeted := s.budgeted(ctx)
	d, err := s.lockCurrentContext(ctx)
	if err != nil {
		if budgeted {
			s.deadlineMisses[cls].Add(1)
		}
		return false, err
	}
	if recording {
		s.record(id)
	}
	d.seq.WriteBegin()
	m.inject(i)
	present = d.table.Delete(key)
	d.seq.WriteEnd()
	d.mu.Unlock()
	return present, nil
}

// Range calls fn for every key/value pair until fn returns false. It
// visits stripes one at a time: each stripe's pairs are copied out under
// that stripe's lock and fn runs on the copy with no lock held, so fn may
// call back into the Map freely. The traversal is per-stripe consistent;
// concurrent writers may be observed in some stripes and not others.
func (m *Map) Range(fn func(key, val uint64) bool) {
	m.rangeStripes(nil, fn)
}

// RangeContext is Range with every stripe acquisition bounded by ctx; it
// returns ctx.Err() from the first stripe whose lock could not be taken
// in time (pairs already yielded stay yielded).
func (m *Map) RangeContext(ctx context.Context, fn func(key, val uint64) bool) error {
	return m.rangeStripes(ctx, fn)
}

type kv struct{ key, val uint64 }

func (m *Map) rangeStripes(ctx context.Context, fn func(key, val uint64) bool) error {
	var pairs []kv
	for i := range m.stripes {
		d, err := m.stripes[i].lockCurrentContext(ctx)
		if err != nil {
			return err
		}
		pairs = pairs[:0]
		d.table.Range(func(k, v uint64) bool {
			pairs = append(pairs, kv{k, v})
			return true
		})
		d.mu.Unlock()
		for _, p := range pairs {
			if !fn(p.key, p.val) {
				return nil
			}
		}
	}
	return nil
}

// Scan calls fn for every key/value pair with lo <= key <= hi, in
// ascending global key order, until fn returns false. Bounds are
// inclusive, so the full domain is Scan(0, ^uint64(0), fn).
//
// Scan requires every stripe's current backend to be ordered (a
// store.Ordered implementation: "skiplist", "rbtree"); otherwise it
// returns ErrUnordered without visiting anything. Keys are hash-routed,
// so every stripe holds an arbitrary subset of [lo, hi]: each stripe's
// matches are copied out under that stripe's lock (one stripe at a time,
// like Range), then merged across stripes into global key order before
// fn sees the first pair. fn therefore runs with no lock held and may
// call back into the Map, but a Scan buffers all matching pairs — size
// ranges accordingly, or use ScanChunked to bound the buffering. Like
// every multi-stripe read the result is per-stripe consistent, not a
// point-in-time snapshot.
func (m *Map) Scan(lo, hi uint64, fn func(key, val uint64) bool) error {
	return m.scanStripes(nil, lo, hi, fn)
}

// ScanContext is Scan with every stripe acquisition bounded by ctx; it
// returns ctx.Err() from the first stripe whose lock could not be taken
// in time (fn then sees no pairs at all — the merge happens after every
// stripe has been visited).
func (m *Map) ScanContext(ctx context.Context, lo, hi uint64, fn func(key, val uint64) bool) error {
	return m.scanStripes(ctx, lo, hi, fn)
}

// Ordered reports whether every stripe's current backend maintains key
// order, i.e. whether Scan and ScanChunked can serve range queries right
// now. After a partial reconfiguration (some stripes ordered, some not)
// it reports false — a merged range query needs every stripe.
func (m *Map) Ordered() bool { return m.requireOrdered() == nil }

// BackendSpec returns the construction-time backend spec the stripes
// were originally built from (Config.BackendSpec, resolved). Live specs
// may differ per stripe after Reconfigure — see StripeSpecs.
func (m *Map) BackendSpec() string { return m.cfgBackend }

// ReadPath returns the canonical form of the read-path spec the map was
// built with ("locked", "optimistic", "optimistic?retries=N").
func (m *Map) ReadPath() string { return m.readPath.String() }

// EpochStats reads the map's grace-period clock: pinned lock-free
// readers, retirements enqueued and collected. On a locked-read map all
// fields stay zero (nothing pins, Reconfigure still retires but with no
// readers every advance succeeds immediately).
func (m *Map) EpochStats() optimistic.EpochStats { return m.epoch.Stats() }

// RetiredDescriptors gauges stripe descriptors replaced by Reconfigure
// whose grace period has not yet completed. Nonzero means some reader
// pinned at swap time may still be traversing a migrated-away table —
// safe (the seqlock poison keeps it from validating anything), but live
// memory a non-GC port would not yet have freed.
func (m *Map) RetiredDescriptors() int64 { return m.retired.Load() }

// countScan counts one scan attempt — before the ordered check, so scan
// demand is visible even when the current backends cannot serve it (that
// visibility is what lets a controller decide to swap a backend in).
func (m *Map) countScan() {
	m.scans.Add(1)
}

// requireOrdered rejects a scan up front when some stripe's current
// backend is unordered. It is advisory (a concurrent Reconfigure can
// invalidate it); the per-stripe check at lock time is authoritative.
func (m *Map) requireOrdered() error {
	for i := range m.stripes {
		if d := m.stripes[i].desc.Load(); d.ordered == nil {
			return unorderedErr(i, d.backendSpec)
		}
	}
	return nil
}

func unorderedErr(i int, backendSpec string) error {
	return fmt.Errorf("%w: stripe %d backend spec %q has no Scan (known ordered backends implement store.Ordered)",
		ErrUnordered, i, backendSpec)
}

func (m *Map) scanStripes(ctx context.Context, lo, hi uint64, fn func(key, val uint64) bool) error {
	m.countScan()
	if err := m.requireOrdered(); err != nil {
		return err
	}
	// Phase 1: per-stripe collection. Each stripe's Scan yields its
	// matches already in ascending order; they are copied out under the
	// stripe lock so the merge (and fn) run with no lock held.
	runs := make([][]kv, 0, len(m.stripes))
	for i := range m.stripes {
		d, err := m.stripes[i].lockCurrentContext(ctx)
		if err != nil {
			return err
		}
		if d.ordered == nil {
			// Reconfigured to an unordered backend after requireOrdered.
			d.mu.Unlock()
			return unorderedErr(i, d.backendSpec)
		}
		var run []kv
		d.ordered.Scan(lo, hi, func(k, v uint64) bool {
			run = append(run, kv{k, v})
			return true
		})
		d.mu.Unlock()
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	// Phase 2: k-way merge of the sorted runs into global key order.
	mergeRuns(runs, fn)
	return nil
}

// mergeRuns k-way merges the sorted, key-disjoint runs and feeds the
// pairs to fn in ascending key order; it reports whether the merge ran
// to completion (false: fn stopped it early). Every key lives in exactly
// one stripe, so no tie-breaking is needed. A binary heap over the run
// heads keeps the merge O(N log S) for S runs.
func mergeRuns(runs [][]kv, fn func(key, val uint64) bool) bool {
	h := make([]int, 0, len(runs)) // heap of run indices, keyed by head key
	pos := make([]int, len(runs))
	for i := range runs {
		if len(runs[i]) > 0 {
			h = append(h, i)
		}
	}
	headKey := func(i int) uint64 { return runs[h[i]][pos[h[i]]].key }
	less := func(i, j int) bool { return headKey(i) < headKey(j) }
	var siftDown func(i int)
	siftDown = func(i int) {
		for {
			l, r, min := 2*i+1, 2*i+2, i
			if l < len(h) && less(l, min) {
				min = l
			}
			if r < len(h) && less(r, min) {
				min = r
			}
			if min == i {
				return
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		run := h[0]
		p := runs[run][pos[run]]
		if !fn(p.key, p.val) {
			return false
		}
		pos[run]++
		if pos[run] == len(runs[run]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(0)
		}
	}
	return true
}

// StripeSnapshot is the observable state of one stripe.
type StripeSnapshot struct {
	// Index is the stripe's position in the map.
	Index int
	// Len is the stripe's key count.
	Len int
	// LockSpec and BackendSpec are the specs the stripe's current lock
	// and backend were built from (live values — they change under
	// Reconfigure).
	LockSpec    string
	BackendSpec string
	// Ordered reports whether the stripe's current backend maintains key
	// order (satisfies store.Ordered).
	Ordered bool
	// Swaps is how many times this stripe has been reconfigured.
	Swaps uint64
	// Scans counts scan work — one per Scan attempt (including attempts
	// rejected with ErrUnordered: demand is a signal even when the
	// backend cannot serve it), one per refilling ScanChunked round (a
	// round re-acquires stripe locks like a fresh Scan, keeping the
	// scan-vs-acquisitions ratio meaningful). Every scan visits every
	// stripe, so this is the map-level count, identical across a
	// snapshot's stripes — it rides here because per-stripe policies
	// (shard.Policy) see only stripe snapshots.
	Scans uint64
	// DeadlineAttempts counts deadline-bounded point operations that
	// arrived at this stripe: context operations whose context can end
	// (Done() != nil). DeadlineMisses counts the subset that expired
	// before reaching the table. Monotonic, and deliberately not reset by
	// Reconfigure — a swap changes the mechanism, not the objective, so
	// the slo policy can read one coherent series across its own swaps.
	// Both are the sums of the per-class arrays below.
	DeadlineAttempts uint64
	DeadlineMisses   uint64
	// ClassDeadlineAttempts and ClassDeadlineMisses break the same
	// counters down by request class (WithClass; the wire protocol's
	// class byte). Index 0 is unclassified traffic — in-process callers
	// that never set a class land there, so the pooled totals above are
	// what they always were.
	ClassDeadlineAttempts [NumClasses]uint64
	ClassDeadlineMisses   [NumClasses]uint64
	// OptimisticHits counts Gets this stripe served lock-free (seqlock
	// validation passed); OptimisticRetries counts failed attempts (a
	// writer was mid-section or moved the stamp inside the read window);
	// OptimisticFallbacks counts Gets that exhausted the retry budget
	// and took the stripe lock instead. All zero on a locked-read map
	// and on stripes whose backend declined store.OptimisticReader.
	// Hits are the Gets missing from Lock.Acquires: on a read-heavy
	// optimistic stripe, Acquires ≈ write volume while hits carry the
	// read volume.
	OptimisticHits      uint64
	OptimisticRetries   uint64
	OptimisticFallbacks uint64
	// Lock is the stripe lock's CR event counters, including those of
	// retired locks from before any reconfiguration (zero when the spec
	// set stats=false).
	Lock core.Snapshot
	// Fairness summarizes the stripe's recorded admission history (zero
	// Admissions when history recording is off or no identified client
	// has been admitted).
	Fairness metrics.Summary
}

// Snapshot is the observable state of the whole map: per-stripe detail
// plus rolled-up totals.
type Snapshot struct {
	Stripes []StripeSnapshot
	// Lock is the field-wise sum of every stripe's lock counters.
	Lock core.Snapshot
	// Len is the total key count.
	Len int
	// Swaps is the total reconfiguration count across stripes.
	Swaps uint64
	// Scans is the map-level scan-attempt count (not a per-stripe sum:
	// every scan visits every stripe).
	Scans uint64
	// DeadlineAttempts and DeadlineMisses are the per-stripe deadline
	// counters summed across stripes; the Class arrays are the same sums
	// broken down by request class (WithClass).
	DeadlineAttempts      uint64
	DeadlineMisses        uint64
	ClassDeadlineAttempts [NumClasses]uint64
	ClassDeadlineMisses   [NumClasses]uint64
	// OptimisticHits/Retries/Fallbacks are the per-stripe optimistic
	// read-path counters summed across stripes.
	OptimisticHits      uint64
	OptimisticRetries   uint64
	OptimisticFallbacks uint64
}

// Snapshot collects per-stripe lengths, lock counters, and fairness
// summaries. The stripe lock is held only to read the table length and
// capture the history slice header — never for the O(HistoryCap) summary
// work, which would stall every request queued behind a monitoring
// scrape. Reading the captured history outside the lock is safe because
// the recorder's storage is preallocated to the full cap (recording stops
// rather than reallocate, see New), entries are immutable once written
// (the lock release/acquire orders them before us), concurrent appends
// touch only indices beyond our captured length, and this package never
// calls Reset — the condition metrics.History's ownership rule sets for
// holding an aliasing view. The cross-stripe view is per-stripe
// consistent.
func (m *Map) Snapshot() Snapshot {
	out, _ := m.snapshotStripes(nil)
	return out
}

// SnapshotContext is Snapshot with every stripe acquisition bounded by
// ctx: observability stays deadline-bounded even when the stripe it wants
// to observe is the one that collapsed.
func (m *Map) SnapshotContext(ctx context.Context) (Snapshot, error) {
	return m.snapshotStripes(ctx)
}

func (m *Map) snapshotStripes(ctx context.Context) (Snapshot, error) {
	return m.snapshotImpl(ctx, false)
}

// SnapshotLite is Snapshot minus the expensive fairness instruments: the
// per-stripe Fairness carries only Admissions and RecentLWSS (the
// recorder's O(1) incrementally maintained trailing distinct count);
// AvgLWSS, MTTR, Gini, and RSTDDEV — each O(history) or O(history log
// history) over up to HistoryCap records per stripe — come back zero.
// It is the sampling path for steady-state monitors (the adaptation
// controller, shardd's /metrics sampler): a monitor that polls on an
// interval must not recompute a full-history Gini per stripe per tick,
// which would starve the data plane the monitoring exists to help.
// Acquisition is bounded by ctx, so a monitor is not held hostage by a
// stripe mid-migration. A nil ctx means unbounded (the plain path).
func (m *Map) SnapshotLite(ctx context.Context) (Snapshot, error) {
	return m.snapshotImpl(ctx, true)
}

func (m *Map) snapshotImpl(ctx context.Context, lite bool) (Snapshot, error) {
	if lite {
		// The lite path is the steady-state sampling path (controller,
		// /metrics), which makes it the natural heartbeat for epoch
		// collection: one cheap advance attempt per sample keeps retired
		// descriptors from waiting on the next Reconfigure to be counted
		// dead.
		m.epoch.TryAdvance()
	}
	out := Snapshot{
		Stripes: make([]StripeSnapshot, len(m.stripes)),
		Scans:   m.scans.Load(),
	}
	for i := range m.stripes {
		s := &m.stripes[i]
		d, err := s.lockCurrentContext(ctx)
		if err != nil {
			return Snapshot{}, err
		}
		ln := d.table.Len()
		var h metrics.History
		recent := 0
		if s.rec != nil {
			h = s.rec.History()
			// The incremental trailing distinct count is maintained under
			// the stripe lock (Record runs in the critical section), so it
			// must be read here, before the release — but it is O(1), which
			// is the point: the lite path pays one integer read where the
			// standalone metrics.RecentLWSS walk pays O(window).
			recent = s.rec.RecentDistinct()
		}
		d.mu.Unlock()
		ls := d.snapshot()
		var fairness metrics.Summary
		if lite {
			fairness = metrics.Summary{
				Admissions: len(h),
				RecentLWSS: float64(recent),
			}
		} else {
			fairness = metrics.Summarize(h, m.window)
		}
		var clsA, clsM [NumClasses]uint64
		var attempts, misses uint64
		for c := 0; c < NumClasses; c++ {
			clsA[c] = s.deadlineAttempts[c].Load()
			clsM[c] = s.deadlineMisses[c].Load()
			attempts += clsA[c]
			misses += clsM[c]
			out.ClassDeadlineAttempts[c] += clsA[c]
			out.ClassDeadlineMisses[c] += clsM[c]
		}
		oh, orr, of := s.optHits.Load(), s.optRetries.Load(), s.optFallbacks.Load()
		out.Stripes[i] = StripeSnapshot{
			Index:                 i,
			Len:                   ln,
			LockSpec:              d.lockSpec,
			BackendSpec:           d.backendSpec,
			Ordered:               d.ordered != nil,
			Swaps:                 d.swaps,
			Scans:                 out.Scans,
			DeadlineAttempts:      attempts,
			DeadlineMisses:        misses,
			ClassDeadlineAttempts: clsA,
			ClassDeadlineMisses:   clsM,
			OptimisticHits:        oh,
			OptimisticRetries:     orr,
			OptimisticFallbacks:   of,
			Lock:                  ls,
			Fairness:              fairness,
		}
		out.Len += ln
		out.Lock = out.Lock.Add(ls)
		out.Swaps += d.swaps
		out.DeadlineAttempts += attempts
		out.DeadlineMisses += misses
		out.OptimisticHits += oh
		out.OptimisticRetries += orr
		out.OptimisticFallbacks += of
	}
	return out, nil
}
