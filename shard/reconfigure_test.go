package shard

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReconfigureBasics(t *testing.T) {
	m := MustNew(Config{Stripes: 4, LockSpec: "tas", Seed: 3, Capacity: 1024})
	const n = 1024
	for i := uint64(0); i < n; i++ {
		m.Put(i, i*7)
	}
	if ls, bs := m.StripeSpecs(0); ls != "tas" || bs != "hashmap" {
		t.Fatalf("StripeSpecs(0) = %q, %q", ls, bs)
	}

	// Swap stripe 0's backend only; the lock spec stays.
	if err := m.Reconfigure(0, "", "skiplist"); err != nil {
		t.Fatal(err)
	}
	if ls, bs := m.StripeSpecs(0); ls != "tas" || bs != "skiplist" {
		t.Fatalf("after backend swap StripeSpecs(0) = %q, %q", ls, bs)
	}
	if ls, bs := m.StripeSpecs(1); ls != "tas" || bs != "hashmap" {
		t.Fatalf("stripe 1 disturbed: %q, %q", ls, bs)
	}
	// Every entry survived the migration.
	if m.Len() != n {
		t.Fatalf("Len=%d want %d after migration", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i*7 {
			t.Fatalf("Get(%d)=%d,%v after migration", i, v, ok)
		}
	}
	// Partial order: the map is not Ordered until every stripe is.
	if m.Ordered() {
		t.Fatal("Ordered with 3 hashmap stripes")
	}
	if err := m.Scan(0, ^uint64(0), func(_, _ uint64) bool { return true }); err == nil {
		t.Fatal("Scan succeeded with unordered stripes")
	}
	for i := 1; i < m.Stripes(); i++ {
		if err := m.Reconfigure(i, "", "skiplist"); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Ordered() {
		t.Fatal("not Ordered after swapping every stripe to skiplist")
	}
	var last uint64
	count, first := 0, true
	if err := m.Scan(0, ^uint64(0), func(k, _ uint64) bool {
		if !first && k <= last {
			t.Fatalf("scan not ascending after reconfiguration: %d after %d", k, last)
		}
		last, first = k, false
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan saw %d keys want %d", count, n)
	}

	// Swap a lock spec; counters stay monotonic via the descriptor base.
	before := m.Snapshot()
	if err := m.Reconfigure(0, "mcscr-stp", ""); err != nil {
		t.Fatal(err)
	}
	if ls, bs := m.StripeSpecs(0); ls != "mcscr-stp" || bs != "skiplist" {
		t.Fatalf("after lock swap StripeSpecs(0) = %q, %q", ls, bs)
	}
	m.Put(1, 1) // traffic on the new lock
	after := m.Snapshot()
	if after.Stripes[0].Lock.Acquires < before.Stripes[0].Lock.Acquires {
		t.Fatalf("Acquires went backwards across lock swap: %d -> %d",
			before.Stripes[0].Lock.Acquires, after.Stripes[0].Lock.Acquires)
	}

	// Swap counting: 4 backend swaps + 1 lock swap so far.
	if after.Swaps != 5 {
		t.Fatalf("Snapshot.Swaps=%d want 5", after.Swaps)
	}
	// A no-op reconfigure (same specs, explicit or empty) counts nothing.
	if err := m.Reconfigure(0, "mcscr-stp", "skiplist"); err != nil {
		t.Fatal(err)
	}
	if err := m.Reconfigure(0, "", ""); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Swaps; got != 5 {
		t.Fatalf("no-op reconfigure counted a swap: %d", got)
	}
}

func TestReconfigureErrors(t *testing.T) {
	m := MustNew(Config{Stripes: 2, LockSpec: "tas"})
	for _, tc := range []struct {
		stripe             int
		lockSpec, backends string
	}{
		{-1, "", ""},
		{2, "", ""},
		{0, "no-such-lock", ""},
		{0, "tas?bogus=1", ""},
		{0, "", "no-such-backend"},
		{0, "", "skiplist?bogus=1"},
	} {
		if err := m.Reconfigure(tc.stripe, tc.lockSpec, tc.backends); err == nil {
			t.Fatalf("Reconfigure(%d, %q, %q) succeeded", tc.stripe, tc.lockSpec, tc.backends)
		}
	}
	// A failed reconfigure leaves the stripe untouched.
	if ls, bs := m.StripeSpecs(0); ls != "tas" || bs != "hashmap" {
		t.Fatalf("failed Reconfigure disturbed specs: %q, %q", ls, bs)
	}
	m.Put(1, 2)
	if v, ok := m.Get(1); !ok || v != 2 {
		t.Fatalf("map broken after failed Reconfigure: %d, %v", v, ok)
	}
}

// TestReconfigureStress is the live-reconfiguration differential: writers
// own disjoint key ranges and readers assert per-key monotonicity while a
// swapper cycles every stripe through lock × backend spec combinations.
// The stripe tables are unsynchronized, so any hole in the swap protocol
// (an op admitted under a retired lock touching a migrated table) is a
// race report under -race; lost or duplicated entries surface in the
// final model comparison.
func TestReconfigureStress(t *testing.T) {
	m := MustNew(Config{Stripes: 4, LockSpec: "mcs-stp", Seed: 11})
	const (
		writers        = 4
		keysPerWriter  = 64
		writesPerKey   = 300
		readerRoutines = 2
	)
	lockSpecs := []string{"tas", "mcs-stp", "mcscr-stp", "clh"}
	backendSpecs := []string{"hashmap", "skiplist", "rbtree"}

	var stop atomic.Bool
	var writerWg, wg sync.WaitGroup

	// Writers: each owns keys [id*keysPerWriter, (id+1)*keysPerWriter),
	// writing strictly increasing values; a random subset is
	// deleted/reinserted to exercise migration of deletions. Each records
	// its final value per key for the differential.
	finals := make([]map[uint64]uint64, writers)
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(id int) {
			defer writerWg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 100))
			final := make(map[uint64]uint64, keysPerWriter)
			base := uint64(id * keysPerWriter)
			for v := uint64(1); v <= writesPerKey; v++ {
				for k := uint64(0); k < keysPerWriter; k++ {
					key := base + k
					if rng.Intn(16) == 0 {
						m.Delete(key)
						delete(final, key)
					} else {
						m.Put(key, v)
						final[key] = v
					}
				}
			}
			finals[id] = final
		}(w)
	}

	// Readers: per-key monotonic observations. A stale read served off a
	// retired table (a swap-protocol hole) shows up as a value going
	// backwards; a read racing a migration shows up under -race.
	for r := 0; r < readerRoutines; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			last := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(int64(id) + 900))
			for !stop.Load() {
				key := uint64(rng.Intn(writers * keysPerWriter))
				v, ok := m.Get(key)
				if !ok {
					continue
				}
				if prev, seen := last[key]; seen && v < prev {
					t.Errorf("key %d went backwards: %d after %d", key, v, prev)
					return
				}
				last[key] = v
			}
		}(r)
	}

	// The swapper: random stripes through random spec combinations, as
	// fast as the quiesce protocol allows.
	wg.Add(1)
	swaps := 0
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for !stop.Load() {
			stripe := rng.Intn(m.Stripes())
			ls := lockSpecs[rng.Intn(len(lockSpecs))]
			bs := backendSpecs[rng.Intn(len(backendSpecs))]
			if err := m.Reconfigure(stripe, ls, bs); err != nil {
				t.Errorf("Reconfigure(%d, %q, %q): %v", stripe, ls, bs, err)
				return
			}
			swaps++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Writers bound the run; readers and the swapper stop when they
	// finish.
	writerWg.Wait()
	stop.Store(true)
	wg.Wait()

	// Differential: the map must hold exactly the union of the writers'
	// final models — no lost entries, no duplicates, no resurrections.
	want := 0
	for w, final := range finals {
		want += len(final)
		for key, val := range final {
			v, ok := m.Get(key)
			if !ok {
				t.Fatalf("writer %d key %d lost (want %d)", w, key, val)
			}
			if v != val {
				t.Fatalf("writer %d key %d = %d want %d", w, key, v, val)
			}
		}
	}
	if got := m.Len(); got != want {
		t.Fatalf("Len=%d want %d after %d swaps", got, want, swaps)
	}
	// Range agrees with Len (a duplicated entry across a migration would
	// show up in a backend's own invariants or here).
	seen := make(map[uint64]bool, want)
	m.Range(func(k, _ uint64) bool {
		if seen[k] {
			t.Fatalf("Range yielded key %d twice", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != want {
		t.Fatalf("Range saw %d keys want %d", len(seen), want)
	}
	if swaps == 0 {
		t.Fatal("swapper never swapped")
	}
	// No-op Reconfigure calls (a random pick matching the current pair)
	// are not counted, so Swaps <= calls; but the counter must move.
	if got := m.Snapshot().Swaps; got == 0 || got > uint64(swaps) {
		t.Fatalf("Snapshot.Swaps=%d after %d Reconfigure calls", got, swaps)
	}
}

// TestReconfigureContextOps checks the deadline path across swaps: a
// context op that retries across a descriptor change still reconciles
// Cancels exactly, and grant-wins semantics are unchanged.
func TestReconfigureContextOps(t *testing.T) {
	m := MustNew(Config{Stripes: 1, LockSpec: "mcs-stp", HistoryCap: 1 << 12})
	const goroutines, iters = 4, 200
	var errs, succ atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			base := WithClientID(context.Background(), id)
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithTimeout(base, time.Duration(rng.Intn(300))*time.Microsecond)
				var err error
				if rng.Intn(2) == 0 {
					_, _, err = m.GetContext(ctx, uint64(rng.Intn(64)))
				} else {
					_, err = m.PutContext(ctx, uint64(rng.Intn(64)), uint64(i))
				}
				cancel()
				if err != nil {
					errs.Add(1)
				} else {
					succ.Add(1)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		specs := []string{"mcscr-stp", "mcs-stp"}
		for i := 0; !stop.Load(); i++ {
			if err := m.Reconfigure(0, specs[i%2], ""); err != nil {
				t.Errorf("Reconfigure: %v", err)
				return
			}
		}
	}()
	go func() {
		// Writers finish, then the swapper is released.
		for succ.Load()+errs.Load() < goroutines*iters {
			time.Sleep(time.Millisecond)
		}
		stop.Store(true)
	}()
	wg.Wait()
	if errs.Load()+succ.Load() != goroutines*iters {
		t.Fatalf("accounting hole: %d+%d != %d", errs.Load(), succ.Load(), goroutines*iters)
	}
	// Cancels counted on retired locks after their retirement snapshot
	// are dropped from Snapshot (the documented drain-window loss), so
	// the visible count is a lower bound never exceeding caller errors.
	snap := m.Snapshot()
	if snap.Lock.Cancels > uint64(errs.Load()) {
		t.Fatalf("Cancels=%d > caller errors %d", snap.Lock.Cancels, errs.Load())
	}
	// Every successful identified admission is in the history (history
	// survives swaps: it belongs to the stripe, not the descriptor).
	if got := snap.Stripes[0].Fairness.Admissions; got != int(succ.Load()) {
		t.Fatalf("history recorded %d admissions but %d ops succeeded", got, succ.Load())
	}
}
