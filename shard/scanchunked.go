package shard

import (
	"context"
	"fmt"
	"sort"
)

// ScanChunked is Scan with bounded buffering: instead of copying every
// matching pair out of every stripe before the merge, it collects at
// most chunk pairs per stripe per round, merges and yields the globally
// safe prefix, and repeats from where each stripe left off. Memory is
// O(chunk × stripes) regardless of how many pairs [lo, hi] holds, so a
// full-domain scan of a huge map no longer materializes the whole map.
//
// fn still sees pairs in ascending global key order with no lock held
// (it may call back into the Map), and a false return still stops the
// scan. The trade is consistency: where Scan reads each stripe once,
// ScanChunked re-locks each stripe once per round, so the *guaranteed*
// view of a stripe is consistent per chunk, not per scan — a pair
// deleted after its chunk was copied may still be yielded, a pair
// inserted behind a stripe's cursor is missed, and two chunks of the
// same stripe may bracket a writer. Keys never yielded out of order and
// never yielded twice: rounds emit disjoint, ascending key intervals.
// Pairs that are never touched during the scan are yielded exactly
// once, as in Scan.
//
// The guarantee is certified, not just documented: every refill records
// the stripe's seqlock stamp (descriptor.seq, maintained by all write
// paths on every backend), and ScanChunkedStats reports how many
// stripes' stamps moved between refills. TornStripes == 0 upgrades the
// guarantee to per-stripe point-in-time: each stripe's portion of the
// output is then a snapshot of that stripe at a single instant — Scan's
// consistency at ScanChunked's bounded memory — leaving only
// cross-stripe skew, which Scan has too. A nonzero TornStripes says
// exactly how many stripes a writer touched mid-scan.
//
// Like Scan, every stripe's current backend must be ordered; otherwise
// ErrUnordered. chunk must be >= 1. A concurrent Reconfigure to an
// unordered backend can fail the scan mid-way (after some pairs were
// yielded) — the one failure mode Scan's collect-then-merge cannot have.
func (m *Map) ScanChunked(lo, hi uint64, chunk int, fn func(key, val uint64) bool) error {
	_, err := m.scanChunkedStripes(nil, lo, hi, chunk, fn)
	return err
}

// ScanChunkedContext is ScanChunked with every stripe acquisition
// bounded by ctx; it returns ctx.Err() from the first refill whose
// stripe lock could not be taken in time (pairs already yielded stay
// yielded).
func (m *Map) ScanChunkedContext(ctx context.Context, lo, hi uint64, chunk int, fn func(key, val uint64) bool) error {
	_, err := m.scanChunkedStripes(ctx, lo, hi, chunk, fn)
	return err
}

// ScanStats reports what a chunked scan's stamp certification observed.
type ScanStats struct {
	// Rounds is how many refill-and-merge rounds the scan ran (1 when
	// every stripe fit in one chunk — the scan then equals a Scan).
	Rounds int
	// TornStripes is the number of stripes whose seqlock stamp moved
	// between two of their refills (or whose descriptor was swapped
	// mid-scan): stripes whose portion of the output may mix versions.
	// 0 certifies per-stripe point-in-time consistency for the whole
	// scan.
	TornStripes int
}

// ScanChunkedStats is ScanChunkedContext, additionally reporting the
// scan's certification: how many rounds it took and whether any
// stripe's stamp moved between that stripe's refills. Callers that need
// a consistent bounded-memory scan retry while TornStripes > 0 (or
// shrink the key range; a quiescent or read-mostly map certifies on the
// first try).
func (m *Map) ScanChunkedStats(ctx context.Context, lo, hi uint64, chunk int, fn func(key, val uint64) bool) (ScanStats, error) {
	return m.scanChunkedStripes(ctx, lo, hi, chunk, fn)
}

// chunkCursor is one stripe's progress through a chunked scan.
type chunkCursor struct {
	buf []kv // collected, not yet yielded; ascending, keys <= bound
	// arr is the stripe's reusable chunk-capacity backing array. A
	// refill only happens once buf has fully drained (and the previous
	// round's merge — the only other reader of slices into arr — has
	// completed), so arr can be re-filled in place without reallocating.
	arr []kv
	// bound is the key up to which this stripe is known complete: every
	// key the stripe held in [lo, bound] at collection time is in (or
	// has passed through) buf.
	bound uint64
	// next is where the stripe's next refill resumes.
	next uint64
	// exhausted: the last refill reached hi; nothing left to collect.
	exhausted bool

	// Stamp certification: desc and stamp are the stripe's descriptor
	// and seqlock stamp at the latest refill (read under the stripe
	// lock, so the stamp is always even). filled gates the first
	// comparison; torn is set when a later refill finds either changed —
	// a write section (or a descriptor swap) intervened, so this
	// stripe's chunks may bracket a writer.
	desc   *descriptor
	stamp  uint64
	filled bool
	torn   bool
}

func (m *Map) scanChunkedStripes(ctx context.Context, lo, hi uint64, chunk int, fn func(key, val uint64) bool) (ScanStats, error) {
	var stats ScanStats
	if chunk < 1 {
		return stats, fmt.Errorf("shard: ScanChunked chunk %d, want >= 1", chunk)
	}
	m.countScan()
	if err := m.requireOrdered(); err != nil {
		return stats, err
	}
	cursors := make([]chunkCursor, len(m.stripes))
	for i := range cursors {
		cursors[i].next = lo
	}
	emit := make([][]kv, 0, len(m.stripes))
	for round := 0; ; round++ {
		// Refill every drained, unexhausted stripe: up to chunk pairs
		// from its cursor, each under its own (current) stripe lock.
		refilled := 0
		for i := range cursors {
			c := &cursors[i]
			if len(c.buf) > 0 || c.exhausted {
				continue
			}
			refilled++
			d, err := m.stripes[i].lockCurrentContext(ctx)
			if err != nil {
				return stats, err
			}
			if d.ordered == nil {
				d.mu.Unlock()
				return stats, unorderedErr(i, d.backendSpec)
			}
			// Certify: under the lock the stamp is stable (even); if it —
			// or the descriptor itself — moved since this stripe's last
			// refill, a write section (or swap) fell between the chunks.
			if st := d.seq.Stamp(); c.filled && (d != c.desc || st != c.stamp) {
				c.torn = true
			} else {
				c.desc, c.stamp, c.filled = d, st, true
			}
			truncated := false
			if c.arr == nil {
				c.arr = make([]kv, 0, chunk)
			}
			run := c.arr[:0] // refill the reusable backing array in place
			d.ordered.Scan(c.next, hi, func(k, v uint64) bool {
				if len(run) == chunk {
					truncated = true
					return false
				}
				run = append(run, kv{k, v})
				return true
			})
			d.mu.Unlock()
			c.buf = run
			if truncated {
				// More keys remain in (run[chunk-1].key, hi] — so that
				// last key is < hi and the cursor bump cannot overflow.
				c.bound = run[chunk-1].key
				c.next = c.bound + 1
			} else {
				c.bound = hi
				c.exhausted = true
			}
		}
		if refilled > 0 {
			stats.Rounds++
		}
		if round > 0 && refilled > 0 {
			// Each refilling round past the first re-acquires stripe
			// locks like an additional Scan would: count it, so the scan
			// share a controller computes from Scans vs lock
			// acquisitions means the same thing for chunked and
			// unchunked scans.
			m.countScan()
		}
		// The globally safe prefix ends at the smallest per-stripe
		// bound: beyond it, some truncated stripe may still hold keys
		// we have not collected.
		bound := hi
		for i := range cursors {
			if cursors[i].bound < bound {
				bound = cursors[i].bound
			}
		}
		// Merge and yield every buffered pair with key <= bound; keep
		// the rest for later rounds. The stripe(s) that set the bound
		// drain completely and refill next round, so the bound strictly
		// advances — termination is guaranteed.
		emit = emit[:0]
		done := true
		for i := range cursors {
			c := &cursors[i]
			cut := sort.Search(len(c.buf), func(j int) bool { return c.buf[j].key > bound })
			if cut > 0 {
				emit = append(emit, c.buf[:cut])
			}
			c.buf = c.buf[cut:]
			if len(c.buf) > 0 || !c.exhausted {
				done = false
			}
		}
		if !mergeRuns(emit, fn) || done {
			for i := range cursors {
				if cursors[i].torn {
					stats.TornStripes++
				}
			}
			return stats, nil
		}
	}
}
