package shard

import (
	"context"
	"testing"
	"time"
)

// scriptedPolicy demotes stripe target once a given acquisition delta is
// seen, then restores once, then goes quiet — a minimal stateful policy
// for exercising the controller loop end to end.
type scriptedPolicy struct {
	target  int
	to      string
	restore string
	phase   int
}

func (p *scriptedPolicy) Decide(prev, cur StripeSnapshot) (string, string, bool) {
	if cur.Index != p.target {
		return "", "", false
	}
	switch p.phase {
	case 0:
		if cur.Lock.Acquires > prev.Lock.Acquires {
			p.phase = 1
			return p.to, "", true
		}
	case 1:
		p.phase = 2
		p.restore = "" // nothing to do; pinned demoted
	}
	return "", "", false
}

func TestControllerAppliesDecisions(t *testing.T) {
	m := MustNew(Config{Stripes: 2, LockSpec: "tas"})
	pol := &scriptedPolicy{target: 1, to: "mcscr-stp"}
	c := StartController(context.Background(), m, pol, 2*time.Millisecond)
	defer c.Stop()

	// Drive traffic at stripe 1 until the controller swaps it.
	var key uint64
	for k := uint64(0); k < 1024; k++ {
		if m.StripeFor(k) == 1 {
			key = k
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Swaps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("controller never applied the swap")
		}
		m.Put(key, 1)
	}
	c.Stop()
	if ls, _ := m.StripeSpecs(1); ls != "mcscr-stp" {
		t.Fatalf("stripe 1 lock spec = %q want mcscr-stp", ls)
	}
	if ls, _ := m.StripeSpecs(0); ls != "tas" {
		t.Fatalf("stripe 0 disturbed: %q", ls)
	}
	if c.Swaps() != 1 {
		t.Fatalf("Swaps=%d want 1", c.Swaps())
	}
	if got := m.Snapshot().Swaps; got != 1 {
		t.Fatalf("map Swaps=%d want 1", got)
	}
	// The controller computed per-interval deltas along the way.
	d := c.LastDelta()
	if len(d.Stripes) != m.Stripes() {
		t.Fatalf("LastDelta has %d stripes want %d", len(d.Stripes), m.Stripes())
	}
}

// rejectingPolicy always asks for an unbuildable spec: the controller
// must count the rejection and leave the stripe untouched.
type rejectingPolicy struct{}

func (rejectingPolicy) Decide(prev, cur StripeSnapshot) (string, string, bool) {
	return "no-such-lock", "", true
}

func TestControllerRejectsBadSpecs(t *testing.T) {
	m := MustNew(Config{Stripes: 2, LockSpec: "tas"})
	c := StartController(context.Background(), m, rejectingPolicy{}, time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for c.Rejected() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("controller never saw a rejection")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if c.Swaps() != 0 {
		t.Fatalf("Swaps=%d want 0", c.Swaps())
	}
	if ls, bs := m.StripeSpecs(0); ls != "tas" || bs != "hashmap" {
		t.Fatalf("rejected policy disturbed specs: %q, %q", ls, bs)
	}
}

func TestControllerStopIdempotent(t *testing.T) {
	m := MustNew(Config{Stripes: 1, LockSpec: "tas"})
	ctx, cancel := context.WithCancel(context.Background())
	c := StartController(ctx, m, rejectingPolicy{}, time.Hour) // never ticks
	cancel()                                                   // ctx cancellation alone stops the loop
	c.Stop()
	c.Stop() // idempotent
}

func TestSnapshotSub(t *testing.T) {
	m := MustNew(Config{Stripes: 2, LockSpec: "tas", BackendSpec: "skiplist", HistoryCap: 128})
	ctx := WithClientID(context.Background(), 1)
	prev := m.Snapshot()
	for k := uint64(0); k < 64; k++ {
		if _, err := m.PutContext(ctx, k, k); err != nil {
			t.Fatal(err)
		}
	}
	m.Scan(0, ^uint64(0), func(_, _ uint64) bool { return true })
	if err := m.Reconfigure(0, "mcs-stp", ""); err != nil {
		t.Fatal(err)
	}
	cur := m.Snapshot()
	d := cur.Sub(prev)
	if d.Len != 64 {
		t.Fatalf("delta Len=%d want 64", d.Len)
	}
	if d.Lock.Acquires == 0 {
		t.Fatal("delta Acquires=0 after 64 puts")
	}
	if d.Scans != 1 {
		t.Fatalf("delta Scans=%d want 1 (map-level attempt count, not a per-stripe sum)", d.Scans)
	}
	for _, sd := range d.Stripes {
		if sd.Scans != 1 {
			t.Fatalf("stripe %d delta Scans=%d want 1", sd.Index, sd.Scans)
		}
	}
	if d.Swaps != 1 {
		t.Fatalf("delta Swaps=%d want 1", d.Swaps)
	}
	admissions := 0
	for _, sd := range d.Stripes {
		admissions += sd.Admissions
		if sd.Len < 0 {
			t.Fatalf("stripe %d delta Len=%d", sd.Index, sd.Len)
		}
	}
	if admissions != 64 {
		t.Fatalf("delta admissions=%d want 64", admissions)
	}
	// Self-subtraction is zero; zero prev is the snapshot itself.
	z := cur.Sub(cur)
	if z.Len != 0 || z.Swaps != 0 || z.Scans != 0 || z.Lock.Acquires != 0 {
		t.Fatalf("x.Sub(x) = %+v", z)
	}
	full := cur.Sub(Snapshot{})
	if full.Len != cur.Len || full.Lock.Acquires != cur.Lock.Acquires {
		t.Fatalf("x.Sub(zero) lost data: %+v", full)
	}
}
