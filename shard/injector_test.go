package shard

import (
	"context"
	"sync/atomic"
	"testing"
)

// countingInjector records InCS calls per stripe.
type countingInjector struct {
	calls []atomic.Uint64
}

func (c *countingInjector) InCS(stripe int) { c.calls[stripe].Add(1) }

func (c *countingInjector) total() (n uint64) {
	for i := range c.calls {
		n += c.calls[i].Load()
	}
	return n
}

// TestInjectorHook: an installed injector's InCS runs once per point
// operation — plain and context forms — with the owning stripe's index;
// removing it stops the calls; monitoring paths never inject.
func TestInjectorHook(t *testing.T) {
	m := MustNew(Config{Stripes: 4})
	inj := &countingInjector{calls: make([]atomic.Uint64, 4)}
	m.SetInjector(inj)

	key := uint64(99)
	idx := m.StripeFor(key)
	m.Put(key, 1)
	m.Get(key)
	m.Delete(key)
	ctx := context.Background()
	if _, err := m.PutContext(ctx, key, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.GetContext(ctx, key); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteContext(ctx, key); err != nil {
		t.Fatal(err)
	}
	if got := inj.calls[idx].Load(); got != 6 {
		t.Fatalf("stripe %d InCS calls = %d want 6", idx, got)
	}
	if got := inj.total(); got != 6 {
		t.Fatalf("total InCS calls = %d want 6 (hook fired on a wrong stripe)", got)
	}

	// Monitoring paths hold stripe locks but are not point operations.
	m.Len()
	m.Snapshot()
	m.Range(func(k, v uint64) bool { return true })
	if got := inj.total(); got != 6 {
		t.Fatalf("monitoring path injected: total = %d want 6", got)
	}

	m.SetInjector(nil)
	m.Put(key, 2)
	if got := inj.total(); got != 6 {
		t.Fatalf("removed injector still called: %d", got)
	}
}

// TestDeadlineAccounting: attempts count deadline-bounded point context
// ops only (ctx.Done() != nil); misses count the subset that expired;
// plain ops and value-only contexts are not budgeted.
func TestDeadlineAccounting(t *testing.T) {
	m := MustNew(Config{Stripes: 2})
	key := uint64(7)
	idx := m.StripeFor(key)

	// Plain ops and Background-derived contexts (Done() == nil): not
	// budgeted.
	m.Put(key, 1)
	bg := WithClientID(context.Background(), 3)
	if _, err := m.PutContext(bg, key, 1); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.DeadlineAttempts != 0 || s.DeadlineMisses != 0 {
		t.Fatalf("unbudgeted traffic counted: attempts=%d misses=%d", s.DeadlineAttempts, s.DeadlineMisses)
	}

	// A cancellable context is budgeted; a successful op is no miss.
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := m.PutContext(ctx, key, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.GetContext(ctx, key); err != nil {
		t.Fatal(err)
	}
	s = m.Snapshot()
	st := s.Stripes[idx]
	if st.DeadlineAttempts != 2 || st.DeadlineMisses != 0 {
		t.Fatalf("stripe counters = %d/%d want 2/0", st.DeadlineMisses, st.DeadlineAttempts)
	}

	// An expired context misses.
	cancel()
	if _, err := m.PutContext(ctx, key, 3); err == nil {
		t.Fatal("canceled context op succeeded")
	}
	if _, err := m.DeleteContext(ctx, key); err == nil {
		t.Fatal("canceled context op succeeded")
	}
	s = m.Snapshot()
	st = s.Stripes[idx]
	if st.DeadlineAttempts != 4 || st.DeadlineMisses != 2 {
		t.Fatalf("stripe counters = %d/%d want 2/4", st.DeadlineMisses, st.DeadlineAttempts)
	}
	if s.DeadlineAttempts != 4 || s.DeadlineMisses != 2 {
		t.Fatalf("rollup = %d/%d want 2/4", s.DeadlineMisses, s.DeadlineAttempts)
	}
	other := s.Stripes[1-idx]
	if other.DeadlineAttempts != 0 {
		t.Fatalf("idle stripe counted %d attempts", other.DeadlineAttempts)
	}

	// Counters survive a reconfiguration: they belong to the stripe.
	if err := m.Reconfigure(idx, "mcscr-stp", ""); err != nil {
		t.Fatal(err)
	}
	st = m.Snapshot().Stripes[idx]
	if st.DeadlineAttempts != 4 || st.DeadlineMisses != 2 {
		t.Fatalf("reconfigure reset deadline counters: %d/%d", st.DeadlineMisses, st.DeadlineAttempts)
	}
}

// TestDeltaDeadlineSaturation: Sub saturates the deadline deltas at zero
// (mismatched snapshot pairing must not wrap), and tolerates a prev with
// a different stripe count.
func TestDeltaDeadlineSaturation(t *testing.T) {
	cur := Snapshot{
		Stripes: []StripeSnapshot{
			{Index: 0, DeadlineAttempts: 10, DeadlineMisses: 2},
			{Index: 1, DeadlineAttempts: 5, DeadlineMisses: 5},
		},
		DeadlineAttempts: 15,
		DeadlineMisses:   7,
	}
	prev := Snapshot{
		Stripes: []StripeSnapshot{
			{Index: 0, DeadlineAttempts: 100, DeadlineMisses: 50}, // "later" than cur: wrong pairing
		},
		DeadlineAttempts: 100,
		DeadlineMisses:   50,
	}
	d := cur.Sub(prev)
	if d.Stripes[0].DeadlineAttempts != 0 || d.Stripes[0].DeadlineMisses != 0 {
		t.Fatalf("stripe 0 delta wrapped: %d/%d", d.Stripes[0].DeadlineMisses, d.Stripes[0].DeadlineAttempts)
	}
	// Stripe 1 has no prev: the delta degrades to the cumulative value.
	if d.Stripes[1].DeadlineAttempts != 5 || d.Stripes[1].DeadlineMisses != 5 {
		t.Fatalf("stripe 1 delta = %d/%d want 5/5", d.Stripes[1].DeadlineMisses, d.Stripes[1].DeadlineAttempts)
	}
	if d.DeadlineAttempts != 0 || d.DeadlineMisses != 0 {
		t.Fatalf("rollup delta wrapped: %d/%d", d.DeadlineMisses, d.DeadlineAttempts)
	}

	// The well-ordered direction subtracts exactly.
	d = cur.Sub(Snapshot{Stripes: []StripeSnapshot{{DeadlineAttempts: 4, DeadlineMisses: 1}, {}}, DeadlineAttempts: 4, DeadlineMisses: 1})
	if d.Stripes[0].DeadlineAttempts != 6 || d.Stripes[0].DeadlineMisses != 1 {
		t.Fatalf("stripe 0 delta = %d/%d want 1/6", d.Stripes[0].DeadlineMisses, d.Stripes[0].DeadlineAttempts)
	}
	if d.DeadlineAttempts != 11 || d.DeadlineMisses != 6 {
		t.Fatalf("rollup delta = %d/%d want 6/11", d.DeadlineMisses, d.DeadlineAttempts)
	}
}
